"""Tests for the path-expression parser."""

import pytest

from repro.algebra.connectors import Connector
from repro.core.parser import parse_path_expression, tokenize
from repro.errors import PathSyntaxError


class TestTokenizer:
    def test_names_and_connectors(self):
        tokens = tokenize("ta@>grad.take")
        assert [(k, v) for k, v, _ in tokens] == [
            ("name", "ta"),
            ("connector", "@>"),
            ("name", "grad"),
            ("connector", "."),
            ("name", "take"),
        ]

    def test_whitespace_allowed(self):
        assert len(tokenize("ta ~ name")) == 3

    def test_two_char_connectors_win(self):
        tokens = tokenize("a<@b")
        assert tokens[1][1] == "<@"

    def test_dashed_names(self):
        tokens = tokenize("teaching-asst@>grad")
        assert tokens[0][1] == "teaching-asst"

    def test_unexpected_character(self):
        with pytest.raises(PathSyntaxError):
            tokenize("a!b")


class TestParsing:
    def test_paper_examples_parse(self):
        for text in (
            "student.take.teacher",
            "student@>person.ssn",
            "department.student@>person.name",
            "ta~name",
            "ta@>grad@>student@>person.name",
            "ta@>instructor@>teacher@>employee@>person.name",
        ):
            expression = parse_path_expression(text)
            assert expression.root in ("student", "department", "ta")

    def test_simple_incomplete_form(self):
        expression = parse_path_expression("ta ~ name")
        assert expression.is_incomplete
        assert expression.is_simple_incomplete
        assert expression.root == "ta"
        assert expression.last_name == "name"

    def test_complete_expression(self):
        expression = parse_path_expression("student.take.teacher")
        assert expression.is_complete
        assert [s.connector for s in expression.steps] == [
            Connector.ASSOC,
            Connector.ASSOC,
        ]

    def test_mixed_incomplete(self):
        expression = parse_path_expression("dept~student.take~name")
        assert expression.tilde_count == 2
        assert not expression.is_simple_incomplete

    def test_all_connector_kinds(self):
        expression = parse_path_expression("a@>b<@c$>d<$e.f~g")
        symbols = [s.symbol for s in expression.steps]
        assert symbols == ["@>", "<@", "$>", "<$", ".", "~"]

    def test_round_trips_through_str(self):
        text = "ta@>grad@>student@>person.name"
        assert str(parse_path_expression(text)) == text

    def test_bare_class_is_a_valid_empty_expression(self):
        expression = parse_path_expression("student")
        assert expression.root == "student"
        assert expression.steps == ()
        assert expression.is_complete


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "@>name",          # starts with a connector
            "a.",              # trailing connector
            "a~",              # trailing tilde
            "a b",             # two names without a connector
            "a..b",            # derived connector not writable
            "a.~b",            # connector connector
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(PathSyntaxError):
            parse_path_expression(text)

    def test_error_carries_position_and_text(self):
        with pytest.raises(PathSyntaxError) as excinfo:
            parse_path_expression("a!b")
        assert excinfo.value.text == "a!b"
        assert excinfo.value.position == 1
