"""Bench E7 — the search audit log (EXPLAIN ANALYZE) under CUPID.

Three contracts, measured over the ten-query Section 5 workload:

* the *disabled* audit leaves the cold search hot path intact — the
  per-decision-point guard cost is bounded under 5% of a cold
  completion (asserted here and in ``tests/core/test_audit.py``), and
  the cold completion time itself lands in the ``BENCH_history.jsonl``
  ledger so ``python -m repro.obs.perf compare`` gates regressions the
  instrumentation might introduce;
* the *enabled* audit records the full decision stream: the exported
  ``BENCH_audit.jsonl`` validates against ``audit_record.schema.json``
  and reconstructs to the exact walk order;
* the cross-mode diff sweep (every workload query under
  ``pruning=closure`` vs ``pruning=none`` at E=1..3, E=1 under
  ``BENCH_QUICK``) proves record-by-record that results are identical
  and every closure divergence is an admissible cut.
"""

from __future__ import annotations

import os
import pathlib
import time

import pytest

from benchmarks.conftest import emit, record_bench
from repro.core.audit import (
    SearchAuditLog,
    audit_completion,
    diff_modes,
    get_audit,
    reconstruct_tree,
    use_audit,
)
from repro.core.compiled import CompiledSchema, compile_schema
from repro.core.target import RelationshipTarget
from repro.obs.schema import validate_audit_records

_ROOT = pathlib.Path(__file__).parent.parent
_AUDIT_FILE = _ROOT / "BENCH_audit.jsonl"

QUICK = os.environ.get("BENCH_QUICK") == "1"
E_MAX = 1 if QUICK else 3
EXPORT_QUERY = "experiment ~ conductance"


def _median_cold_seconds(searcher, root, target, runs: int = 5) -> float:
    samples = []
    for _ in range(runs):
        start = time.perf_counter()
        searcher.run(root, target)
        samples.append(time.perf_counter() - start)
    return sorted(samples)[len(samples) // 2]


@pytest.mark.benchmark(group="search-audit")
def test_audit_overhead_and_export(cupid):
    compiled = CompiledSchema(cupid)
    searcher = compiled.searcher(e=E_MAX)
    target = RelationshipTarget("conductance")

    cold_seconds = _median_cold_seconds(searcher, "experiment", target)

    # Disabled-path bound: the guard is a hoisted local bool per
    # decision point; charge the measured contextvar-read cost (a
    # strict overestimate) at four checks per recursive call, edge,
    # and completing edge.
    audit = get_audit()
    audit_on = audit.enabled
    iterations = 200_000
    start = time.perf_counter()
    for _ in range(iterations):
        if audit_on:  # pragma: no cover - never taken
            audit.record("x")
    guarded = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(iterations):
        pass
    per_check = max(guarded - (time.perf_counter() - start), 0.0) / iterations
    stats = searcher.run("experiment", target).stats
    checks = 4 * (
        stats.recursive_calls
        + stats.edges_considered
        + stats.complete_paths_found
    ) + 128
    noop_fraction = (checks * per_check) / cold_seconds
    assert noop_fraction < 0.05, (
        f"disabled-audit overhead {noop_fraction:.1%} of a cold completion"
    )

    # Enabled cost: the same cold search under a recording log.
    start = time.perf_counter()
    with use_audit(SearchAuditLog()):
        searcher.run("experiment", target)
    enabled_seconds = time.perf_counter() - start

    # Export one full audited completion and prove the stream is both
    # schema-valid and loss-free (reconstructs the walk order).
    _, log = audit_completion(compile_schema(cupid), EXPORT_QUERY, e=E_MAX)
    records = log.to_records()
    validate_audit_records(records)
    reconstruct_tree(records)  # raises if the stream is inconsistent
    count = log.write_jsonl(_AUDIT_FILE)

    record_bench("audit.cold_seconds", cold_seconds, e=E_MAX, quick=QUICK)
    record_bench(
        "audit.noop_overhead_fraction",
        noop_fraction,
        unit="fraction",
        e=E_MAX,
        quick=QUICK,
    )
    record_bench(
        "audit.enabled_seconds", enabled_seconds, e=E_MAX, quick=QUICK
    )

    emit(
        "Search audit: disabled-path bound + audited export",
        "\n".join(
            [
                f"cold completion ({EXPORT_QUERY!r}, E={E_MAX}): "
                f"{cold_seconds * 1000:.2f} ms",
                f"disabled-audit bound: {noop_fraction:.2%} of cold "
                "(< 5% asserted)",
                f"enabled audit:        {enabled_seconds * 1000:.2f} ms "
                f"({len(records)} records)",
                f"export: {count} schema-valid record(s) -> "
                f"{_AUDIT_FILE.name}",
            ]
        ),
    )


@pytest.mark.benchmark(group="search-audit")
def test_cross_mode_diff_sweep(cupid, oracle):
    texts = [query.text for query in oracle.queries]
    diffs = []
    start = time.perf_counter()
    for e in range(1, E_MAX + 1):
        for text in texts:
            diff = diff_modes(cupid, text, e=e)
            assert diff.ok, diff.render()
            diffs.append(diff)
    sweep_seconds = time.perf_counter() - start

    explained = sum(len(diff.explained) for diff in diffs)
    saved = sum(
        diff.reference_expansions - diff.closure_expansions for diff in diffs
    )
    record_bench(
        "audit.diff_sweep_seconds",
        sweep_seconds,
        e_max=E_MAX,
        combos=len(diffs),
        quick=QUICK,
    )
    emit(
        "Search audit: reference-vs-closure diff sweep",
        "\n".join(
            [
                f"{len(diffs)} query/E combination(s) at E=1..{E_MAX}: "
                "all identical, zero unexplained divergences",
                f"{explained} divergence(s), every one an admissible "
                f"recorded cut; {saved} expansions saved by the closure "
                "loop overall",
                f"sweep time: {sweep_seconds:.1f} s",
            ]
        ),
    )
