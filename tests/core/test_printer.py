"""Tests for rendering helpers."""

from repro.core.completion import complete_paths
from repro.core.printer import (
    format_candidates,
    format_path,
    format_path_verbose,
    format_result,
)
from repro.core.target import RelationshipTarget


class TestFormatting:
    def test_format_path_is_expression_syntax(self, university_graph):
        result = complete_paths(
            university_graph, "ta", RelationshipTarget("name")
        )
        assert format_path(result.paths[0]) == str(result.paths[0])

    def test_verbose_lists_every_step(self, university_graph):
        result = complete_paths(
            university_graph, "ta", RelationshipTarget("name")
        )
        rendered = format_path_verbose(result.paths[0])
        assert "grad" in rendered
        assert "semantic length" in rendered
        assert "Isa" in rendered

    def test_candidates_are_numbered(self, university_graph):
        result = complete_paths(
            university_graph, "ta", RelationshipTarget("name")
        )
        rendered = format_candidates(result.paths)
        assert "[1]" in rendered
        assert "[2]" in rendered

    def test_empty_candidates(self):
        assert "no completions" in format_candidates([])

    def test_result_report(self, university_graph):
        result = complete_paths(
            university_graph, "ta", RelationshipTarget("name")
        )
        rendered = format_result(result)
        assert "2 completion(s)" in rendered
        assert "calls=" in rendered

    def test_result_report_verbose(self, university_graph):
        result = complete_paths(
            university_graph, "ta", RelationshipTarget("name")
        )
        assert "semantic length" in format_result(result, verbose=True)


class TestStats:
    def test_stats_string(self, university_graph):
        result = complete_paths(
            university_graph, "ta", RelationshipTarget("name")
        )
        text = str(result.stats)
        assert "calls=" in text
        assert "time=" in text

    def test_seconds_per_call(self, university_graph):
        stats = complete_paths(
            university_graph, "ta", RelationshipTarget("name")
        ).stats
        assert stats.seconds_per_call >= 0
        assert stats.as_dict()["recursive_calls"] == stats.recursive_calls

    def test_zero_calls_guard(self):
        from repro.core.stats import TraversalStats

        assert TraversalStats().seconds_per_call == 0.0
