"""Schema deltas as first-class commands.

The paper's machinery assumes a fixed schema, but its motivating
workload — a designer interactively shaping a conceptual schema while
probing it with incomplete path expressions — edits and queries in the
same session.  This module reifies the edits: a :class:`SchemaDelta` is
a sequence of primitive, invertible commands over the class set and the
relationship set, and every layer above the model (the compiled
artifact, the label closure, the completion cache) consumes deltas
instead of rebuilding from the fingerprint.

Commands are deliberately *single-edge* primitives: adding a
relationship adds exactly one directed edge (the paper's auto-installed
inverse is a second command — :func:`relationship_pair` builds the
conventional pair).  Single-edge granularity is what makes the closure's
incremental maintenance (:meth:`repro.core.closure.SchemaClosure.evolved`)
a per-edge row/column propagation rather than a batch recompute.

Three properties every command guarantees:

* **applicable** — ``apply_to(schema)`` either performs the edit or
  raises (:class:`~repro.errors.DeltaError` on a content mismatch, the
  usual schema errors otherwise) leaving the schema untouched;
* **invertible** — ``invert()`` returns the command that exactly undoes
  it; for removals this works because the command snapshots what it
  removes (a :class:`RemoveRelationship` carries the full
  :class:`~repro.model.relationships.Relationship`);
* **footprinted** — ``touched`` names every class the edit involves,
  the frontier that drives surgical cache invalidation and localized
  closure repair.

:meth:`SchemaDelta.diff` constructs the delta between two schemas, so
"edit a scratch copy, diff, apply" is always available when composing
commands by hand is awkward.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.errors import DeltaError
from repro.model.kinds import RelationshipKind
from repro.model.relationships import Relationship

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.model.schema import Schema

__all__ = [
    "AddClass",
    "AddInheritanceEdge",
    "AddRelationship",
    "DeltaCommand",
    "RemoveClass",
    "RemoveInheritanceEdge",
    "RemoveRelationship",
    "SchemaDelta",
    "relationship_pair",
]


class DeltaCommand:
    """Base class of the primitive schema-edit commands.

    Subclasses are frozen dataclasses implementing ``apply_to``,
    ``invert``, and the ``touched`` footprint.
    """

    def apply_to(self, schema: "Schema") -> None:
        raise NotImplementedError

    def invert(self) -> "DeltaCommand":
        raise NotImplementedError

    @property
    def touched(self) -> frozenset[str]:
        """The class names this edit involves (the delta's frontier)."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human rendering (sessions echo it after ``:edit``)."""
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class AddClass(DeltaCommand):
    """Add a user-defined class."""

    name: str
    doc: str = ""

    def apply_to(self, schema: "Schema") -> None:
        schema.add_class(self.name, doc=self.doc)

    def invert(self) -> "RemoveClass":
        return RemoveClass(self.name, doc=self.doc)

    @property
    def touched(self) -> frozenset[str]:
        return frozenset((self.name,))

    def describe(self) -> str:
        return f"add class {self.name}"


@dataclasses.dataclass(frozen=True)
class RemoveClass(DeltaCommand):
    """Remove a user-defined class.

    The class must be isolated when the command runs — a well-formed
    delta removes the class's relationships first (``diff`` orders its
    commands that way), which is exactly what keeps the command
    invertible without snapshotting edges.  ``doc`` is carried only so
    ``invert`` restores the definition verbatim.
    """

    name: str
    doc: str = ""

    def apply_to(self, schema: "Schema") -> None:
        schema.remove_class(self.name)

    def invert(self) -> "AddClass":
        return AddClass(self.name, doc=self.doc)

    @property
    def touched(self) -> frozenset[str]:
        return frozenset((self.name,))

    def describe(self) -> str:
        return f"remove class {self.name}"


@dataclasses.dataclass(frozen=True)
class AddRelationship(DeltaCommand):
    """Add exactly one directed relationship (no automatic inverse)."""

    relationship: Relationship

    def apply_to(self, schema: "Schema") -> None:
        rel = self.relationship
        schema.add_relationship(
            rel.source,
            rel.target,
            rel.kind,
            name=rel.name,
            add_inverse=False,
            doc=rel.doc,
        )

    def invert(self) -> "RemoveRelationship":
        return RemoveRelationship(self.relationship)

    @property
    def touched(self) -> frozenset[str]:
        return frozenset((self.relationship.source, self.relationship.target))

    def describe(self) -> str:
        rel = self.relationship
        return f"add {rel.source} {rel.kind.symbol}{rel.name} -> {rel.target}"


@dataclasses.dataclass(frozen=True)
class RemoveRelationship(DeltaCommand):
    """Remove one directed relationship.

    Carries the full :class:`~repro.model.relationships.Relationship`
    snapshot and refuses to apply when the schema's stored edge has
    drifted from it (different target or kind) — silently removing a
    different edge would make ``invert`` restore the wrong one.
    """

    relationship: Relationship

    def apply_to(self, schema: "Schema") -> None:
        expected = self.relationship
        stored = schema.get_relationship(expected.source, expected.name)
        if stored.target != expected.target or stored.kind is not expected.kind:
            raise DeltaError(
                f"cannot remove {expected.source}.{expected.name}: schema "
                f"holds {stored.kind.symbol}{stored.name} -> {stored.target}, "
                f"command expects {expected.kind.symbol}{expected.name} -> "
                f"{expected.target}"
            )
        schema.remove_relationship(expected.source, expected.name)

    def invert(self) -> "AddRelationship":
        return AddRelationship(self.relationship)

    @property
    def touched(self) -> frozenset[str]:
        return frozenset((self.relationship.source, self.relationship.target))

    def describe(self) -> str:
        rel = self.relationship
        return (
            f"remove {rel.source} {rel.kind.symbol}{rel.name} -> {rel.target}"
        )


@dataclasses.dataclass(frozen=True)
class AddInheritanceEdge(DeltaCommand):
    """Add an Isa edge ``subclass @> superclass`` (default-named)."""

    subclass: str
    superclass: str

    @property
    def relationship(self) -> Relationship:
        return Relationship.isa(self.subclass, self.superclass)

    def apply_to(self, schema: "Schema") -> None:
        AddRelationship(self.relationship).apply_to(schema)

    def invert(self) -> "RemoveInheritanceEdge":
        return RemoveInheritanceEdge(self.subclass, self.superclass)

    @property
    def touched(self) -> frozenset[str]:
        return frozenset((self.subclass, self.superclass))

    def describe(self) -> str:
        return f"add isa {self.subclass} @> {self.superclass}"


@dataclasses.dataclass(frozen=True)
class RemoveInheritanceEdge(DeltaCommand):
    """Remove the default-named Isa edge ``subclass @> superclass``."""

    subclass: str
    superclass: str

    @property
    def relationship(self) -> Relationship:
        return Relationship.isa(self.subclass, self.superclass)

    def apply_to(self, schema: "Schema") -> None:
        RemoveRelationship(self.relationship).apply_to(schema)

    def invert(self) -> "AddInheritanceEdge":
        return AddInheritanceEdge(self.subclass, self.superclass)

    @property
    def touched(self) -> frozenset[str]:
        return frozenset((self.subclass, self.superclass))

    def describe(self) -> str:
        return f"remove isa {self.subclass} @> {self.superclass}"


@dataclasses.dataclass(frozen=True)
class SchemaDelta:
    """A composable, invertible sequence of schema-edit commands."""

    commands: tuple[DeltaCommand, ...] = ()

    @classmethod
    def of(cls, *parts: "DeltaCommand | SchemaDelta") -> "SchemaDelta":
        """Build a delta from commands and/or other deltas (flattened)."""
        commands: list[DeltaCommand] = []
        for part in parts:
            if isinstance(part, SchemaDelta):
                commands.extend(part.commands)
            elif isinstance(part, DeltaCommand):
                commands.append(part)
            else:
                raise TypeError(
                    f"expected DeltaCommand or SchemaDelta, got {part!r}"
                )
        return cls(tuple(commands))

    @classmethod
    def diff(cls, old: "Schema", new: "Schema") -> "SchemaDelta":
        """The delta that edits ``old``'s content into ``new``'s.

        Commands come out in a safe application order: relationship
        removals first, then class removals (so classes are isolated
        when removed), then class additions, then relationship
        additions.  A relationship whose ``(source, name)`` key survives
        but whose target or kind changed becomes a remove + add pair.
        Declaration *order* is not reproduced — the paper's semantics
        (and the fingerprint) are declaration-order independent.
        Default-named Isa edges are rendered as inheritance-edge
        commands so edit logs read like the modeling operation they are.
        """
        commands: list[DeltaCommand] = []
        old_rels = {rel.key: rel for rel in old.relationships()}
        new_rels = {rel.key: rel for rel in new.relationships()}
        old_classes = {cls_.name: cls_ for cls_ in old.classes(False)}
        new_classes = {cls_.name: cls_ for cls_ in new.classes(False)}

        def changed(key: tuple[str, str]) -> bool:
            before, after = old_rels[key], new_rels[key]
            return before.target != after.target or before.kind is not after.kind

        for key in sorted(old_rels):
            if key not in new_rels or changed(key):
                commands.append(_remove_relationship_command(old_rels[key]))
        for name in sorted(old_classes):
            if name not in new_classes:
                commands.append(
                    RemoveClass(name, doc=old_classes[name].doc)
                )
        for name in sorted(new_classes):
            if name not in old_classes:
                commands.append(AddClass(name, doc=new_classes[name].doc))
        for key in sorted(new_rels):
            if key not in old_rels or changed(key):
                commands.append(_add_relationship_command(new_rels[key]))
        return cls(tuple(commands))

    def then(self, other: "SchemaDelta | DeltaCommand") -> "SchemaDelta":
        """Sequential composition: this delta followed by ``other``."""
        return SchemaDelta.of(self, other)

    def invert(self) -> "SchemaDelta":
        """The delta that exactly undoes this one (commands reversed)."""
        return SchemaDelta(
            tuple(command.invert() for command in reversed(self.commands))
        )

    def apply_to(self, schema: "Schema") -> None:
        """Apply every command to ``schema``, in order."""
        for command in self.commands:
            command.apply_to(schema)

    def touched_classes(self) -> frozenset[str]:
        """Union of the per-command footprints — the delta's frontier.

        The structural-patch set: the graph layer rebuilds exactly these
        adjacency rows, and the closure repair seeds its localized BFS
        from edges incident to them.
        """
        touched: set[str] = set()
        for command in self.commands:
            touched |= command.touched
        return frozenset(touched)

    def eviction_frontier(self) -> frozenset[str]:
        """Source classes of every relationship-level command.

        The *sound eviction test* for completion results: a completed
        path's result can change only if some consistent path from its
        root crosses an added or removed edge, and such a path's prefix
        up to the first changed edge lies entirely in the pre-delta
        graph — so that edge's **source** was reachable from the root
        before the edit.  Targets don't matter (a path crosses an edge
        by standing at its source), and bare class additions/removals
        involve no edges at all (a removed class must already be
        isolated).  Cache entries whose recorded support set is disjoint
        from this frontier are therefore carried verbatim.
        """
        frontier: set[str] = set()
        for command in self.commands:
            relationship = getattr(command, "relationship", None)
            if relationship is not None:
                frontier.add(relationship.source)
        return frozenset(frontier)

    @property
    def is_empty(self) -> bool:
        return not self.commands

    def describe(self) -> str:
        """Semicolon-joined one-line rendering of the command sequence."""
        if not self.commands:
            return "(empty delta)"
        return "; ".join(command.describe() for command in self.commands)

    def __len__(self) -> int:
        return len(self.commands)

    def __iter__(self) -> Iterator[DeltaCommand]:
        return iter(self.commands)

    def __bool__(self) -> bool:
        return bool(self.commands)


def _add_relationship_command(rel: Relationship) -> DeltaCommand:
    if rel.kind is RelationshipKind.ISA and rel.has_default_name:
        return AddInheritanceEdge(rel.source, rel.target)
    return AddRelationship(rel)


def _remove_relationship_command(rel: Relationship) -> DeltaCommand:
    if rel.kind is RelationshipKind.ISA and rel.has_default_name:
        return RemoveInheritanceEdge(rel.source, rel.target)
    return RemoveRelationship(rel)


def relationship_pair(
    source: str,
    target: str,
    kind: RelationshipKind,
    name: str = "",
    inverse_name: str = "",
) -> SchemaDelta:
    """The conventional relationship-plus-inverse pair as a delta.

    Mirrors :meth:`~repro.model.schema.Schema.add_relationship`'s
    default behavior (the paper assumes every relationship's inverse is
    present) at delta granularity: two single-edge commands.
    """
    rel = Relationship(source, target, kind, name=name)
    return SchemaDelta.of(
        AddRelationship(rel),
        AddRelationship(rel.make_inverse(inverse_name)),
    )
