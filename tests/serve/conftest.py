"""Shared fixtures for the serving-tier suite.

Every fixture boots the real asyncio tier on an ephemeral port in a
daemon thread and talks to it over real sockets — these are end-to-end
tests of the shipped server, not of a simulated transport.  Tiers use
*private* :class:`~repro.core.compiled.CompiledSchema` artifacts (not
the process-wide registry) so chaos injection and cache-eviction
assertions cannot leak into other suites.
"""

import threading

import pytest

from repro.core.compiled import CompiledSchema
from repro.resilience.retry import RetryPolicy
from repro.serve import ServeClient, ServeConfig, ServingTier, TenantRegistry


class GatedEngine:
    """An engine proxy that blocks completions until the test says go.

    Admission and drain tests need *deterministically* slow requests:
    a request through this proxy parks on an event (no sleeps, no
    timing guesses) until :meth:`release` — at which point the real
    engine answers under whatever ambient budget the server installed.
    """

    def __init__(self, engine) -> None:
        self._engine = engine
        self.gate = threading.Event()
        self.entered = threading.Semaphore(0)

    def release(self) -> None:
        self.gate.set()

    def complete(self, expression, budget=None):
        self.entered.release()
        assert self.gate.wait(timeout=30.0), "test never released the gate"
        if budget is not None:
            return self._engine.complete(expression, budget=budget)
        return self._engine.complete(expression)

    def __getattr__(self, name):
        return getattr(self._engine, name)


def gate_tenant(tenant, e: int = 1) -> GatedEngine:
    """Replace a tenant's memoized engine with a gated proxy."""
    gated = GatedEngine(tenant.engine(e))
    tenant._engines[e] = gated
    return gated


def make_tier(schemas: dict, config: ServeConfig | None = None, **kwargs):
    """Boot a threaded tier over private artifacts; caller must stop()."""
    registry = TenantRegistry(
        max_cache_bytes=kwargs.pop("max_cache_bytes", 8 << 20)
    )
    databases = kwargs.pop("databases", {})
    for name, schema in schemas.items():
        registry.add(
            name,
            CompiledSchema(schema),
            database=databases.get(name),
        )
    tier = ServingTier(
        registry, config=config if config is not None else ServeConfig()
    )
    return tier.run_in_thread()


def raw_client(tier, **kwargs) -> ServeClient:
    """A client with retries disabled — shed/drain answers come raw."""
    host, port = tier.address
    kwargs.setdefault("policy", RetryPolicy.none())
    return ServeClient(host, port, **kwargs)


@pytest.fixture
def university_tier(university):
    tier = make_tier({"university": university})
    yield tier
    tier.stop(drain=False)


@pytest.fixture
def university_client(university_tier):
    return raw_client(university_tier)
