"""Unit tests of the minimal HTTP layer (parsing, framing, limits)."""

import asyncio
import json

import pytest

from repro.serve.http import (
    HttpError,
    Request,
    json_body,
    json_response,
    read_request,
    render_response,
)


def parse(raw: bytes, max_body_bytes: int = 1 << 20):
    """Drive read_request over a fed StreamReader, synchronously."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body_bytes)

    return asyncio.run(run())


class TestRequestParsing:
    def test_simple_get(self):
        request = parse(b"GET /healthz?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.query == "verbose=1"
        assert request.headers["host"] == "x"
        assert request.body == b""

    def test_post_with_body(self):
        body = b'{"expression": "ta ~ name"}'
        raw = (
            b"POST /v1/complete HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert json_body(request) == {"expression": "ta ~ name"}

    def test_header_names_are_lowercased(self):
        request = parse(b"GET / HTTP/1.1\r\nX-Deadline-Ms: 250\r\n\r\n")
        assert request.headers["x-deadline-ms"] == "250"

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_request_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"GET / HTTP/1.1\r\nHost")
        assert exc.value.status == 400

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"BROKEN\r\n\r\n")
        assert exc.value.status == 400

    def test_http2_preface_is_rejected(self):
        with pytest.raises(HttpError) as exc:
            parse(b"PRI * HTTP/2.0\r\n\r\n")
        assert exc.value.status == 400

    def test_chunked_transfer_is_501(self):
        raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        with pytest.raises(HttpError) as exc:
            parse(raw)
        assert exc.value.status == 501

    def test_oversized_body_is_413(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100
        with pytest.raises(HttpError) as exc:
            parse(raw, max_body_bytes=10)
        assert exc.value.status == 413

    def test_negative_content_length_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
        assert exc.value.status == 400

    def test_non_numeric_content_length_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"POST / HTTP/1.1\r\nContent-Length: many\r\n\r\n")
        assert exc.value.status == 400


class TestKeepAlive:
    def test_http11_defaults_to_keep_alive(self):
        request = parse(b"GET / HTTP/1.1\r\n\r\n")
        assert request.keep_alive

    def test_connection_close_is_honoured(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive


class TestJsonBody:
    def _request(self, body: bytes) -> Request:
        return Request(
            method="POST", path="/", query="", headers={}, body=body
        )

    def test_empty_body_is_400(self):
        with pytest.raises(HttpError) as exc:
            json_body(self._request(b""))
        assert exc.value.status == 400

    def test_invalid_json_is_400(self):
        with pytest.raises(HttpError) as exc:
            json_body(self._request(b"{nope"))
        assert exc.value.status == 400

    def test_non_object_json_is_400(self):
        with pytest.raises(HttpError) as exc:
            json_body(self._request(b"[1, 2]"))
        assert exc.value.status == 400


class TestResponses:
    def test_render_carries_length_and_connection(self):
        raw = render_response(200, b"hi", keep_alive=False)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200 OK" in head
        assert b"Content-Length: 2" in head
        assert b"Connection: close" in head
        assert body == b"hi"

    def test_extra_headers_are_emitted(self):
        raw = render_response(
            429, b"{}", extra_headers={"Retry-After": "0.25"}
        )
        assert b"Retry-After: 0.25" in raw

    def test_json_response_round_trips(self):
        raw = json_response(206, {"b": 2, "a": 1})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"206 Partial Content" in head
        assert json.loads(body) == {"a": 1, "b": 2}
        assert body.endswith(b"\n")
