"""Tests for schema JSON (de)serialization."""

import json

import pytest

from repro.errors import SerializationError
from repro.model.serialization import (
    load_schema,
    save_schema,
    schema_from_dict,
    schema_to_dict,
)
from repro.schemas.cupid import build_cupid_schema
from repro.schemas.generator import GeneratorConfig, generate_schema


def _schema_signature(schema):
    return (
        schema.name,
        sorted(c.name for c in schema.classes(include_primitives=False)),
        sorted(
            (r.source, r.name, r.target, r.kind.symbol)
            for r in schema.relationships()
        ),
    )


class TestRoundTrip:
    def test_university_round_trips(self, university):
        restored = schema_from_dict(schema_to_dict(university))
        assert _schema_signature(restored) == _schema_signature(university)

    def test_cupid_round_trips(self):
        schema = build_cupid_schema()
        restored = schema_from_dict(schema_to_dict(schema))
        assert _schema_signature(restored) == _schema_signature(schema)
        assert restored.relationship_count == 364

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_schemas_round_trip(self, seed):
        schema = generate_schema(GeneratorConfig(classes=25, seed=seed))
        restored = schema_from_dict(schema_to_dict(schema))
        assert _schema_signature(restored) == _schema_signature(schema)

    def test_file_round_trip(self, university, tmp_path):
        path = tmp_path / "uni.json"
        save_schema(university, path)
        restored = load_schema(path)
        assert _schema_signature(restored) == _schema_signature(university)

    def test_declaration_order_preserved(self, university):
        restored = schema_from_dict(schema_to_dict(university))
        assert [r.key for r in restored.relationships()] == [
            r.key for r in university.relationships()
        ]


class TestErrors:
    def test_wrong_format_rejected(self):
        with pytest.raises(SerializationError):
            schema_from_dict({"format": "something-else", "version": 1})

    def test_wrong_version_rejected(self):
        with pytest.raises(SerializationError):
            schema_from_dict({"format": "repro-schema", "version": 99})

    def test_unknown_kind_rejected(self, university):
        document = schema_to_dict(university)
        document["relationships"][0]["kind"] = "##"
        with pytest.raises(SerializationError):
            schema_from_dict(document)

    def test_missing_field_rejected(self, university):
        document = schema_to_dict(university)
        del document["relationships"][0]["source"]
        with pytest.raises(SerializationError):
            schema_from_dict(document)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_schema(path)

    def test_document_is_json_serializable(self, university):
        json.dumps(schema_to_dict(university))
