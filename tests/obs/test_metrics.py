"""Tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.core.stats import TraversalStats
from repro.obs.metrics import (
    RESERVOIR_SIZE,
    MetricsRegistry,
    NullMetricsRegistry,
    get_metrics,
    use_metrics,
)
from repro.obs.schema import validate_metrics_summary


class TestPrimitives:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("calls")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("calls") is counter

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_keeps_latest(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(3.5)
        gauge.set(1.0)
        assert gauge.value == 1.0

    def test_histogram_snapshot(self):
        histogram = MetricsRegistry().histogram("h")
        for value in [1, 2, 3, 4, 100]:
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 5
        assert snapshot["sum"] == 110
        assert snapshot["min"] == 1
        assert snapshot["max"] == 100
        assert snapshot["mean"] == 22
        assert snapshot["p50"] == 3

    def test_empty_histogram_snapshot_is_zeroed(self):
        snapshot = MetricsRegistry().histogram("h").snapshot()
        assert snapshot["count"] == 0
        assert snapshot["min"] == 0.0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(TypeError):
            registry.gauge("name")

    def test_snapshot_includes_p99(self):
        histogram = MetricsRegistry().histogram("h")
        for value in range(1, 101):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["p99"] >= snapshot["p95"] >= snapshot["p50"]
        assert snapshot["p99"] >= 99
        empty = MetricsRegistry().histogram("e").snapshot()
        assert empty["p99"] == 0.0


class TestReservoirSampling:
    """Regression tests for the Algorithm-R histogram reservoir.

    The original reservoir appended only while unsaturated, so the
    first RESERVOIR_SIZE observations were kept forever and any later
    distribution shift was invisible to the percentiles.
    """

    def test_distribution_shift_after_saturation_moves_p95(self):
        histogram = MetricsRegistry().histogram("latency")
        for _ in range(RESERVOIR_SIZE):
            histogram.observe(1.0)
        assert histogram.snapshot()["p95"] == 1.0
        # The workload degrades *after* the reservoir is full: 3x as
        # many slow observations arrive.  A keep-the-first-N reservoir
        # would still report p95 == 1.0.
        for _ in range(3 * RESERVOIR_SIZE):
            histogram.observe(100.0)
        snapshot = histogram.snapshot()
        assert snapshot["p95"] == 100.0
        assert snapshot["p50"] == 100.0

    def test_count_sum_min_max_stay_exact_past_saturation(self):
        histogram = MetricsRegistry().histogram("h")
        total = 2 * RESERVOIR_SIZE
        for value in range(total):
            histogram.observe(float(value))
        snapshot = histogram.snapshot()
        assert snapshot["count"] == total
        assert snapshot["sum"] == sum(range(total))
        assert snapshot["min"] == 0.0
        assert snapshot["max"] == float(total - 1)

    def test_sampling_is_seeded_and_deterministic(self):
        def build():
            histogram = MetricsRegistry().histogram("h")
            for value in range(3 * RESERVOIR_SIZE):
                histogram.observe(float(value))
            return histogram.snapshot()

        assert build() == build()

    def test_cumulative_buckets_are_monotone_and_end_at_inf(self):
        histogram = MetricsRegistry().histogram("h")
        for value in [0.5, 1.5, 2.5, 99.0]:
            histogram.observe(value)
        buckets = histogram.cumulative_buckets((1.0, 2.0, 10.0))
        bounds = [bound for bound, _ in buckets]
        counts = [count for _, count in buckets]
        assert bounds == [1.0, 2.0, 10.0, float("inf")]
        assert counts == sorted(counts)
        assert counts[-1] == 4  # +Inf bucket always equals the count
        assert counts[0] == 1 and counts[1] == 2 and counts[2] == 3


class TestAmbientRegistry:
    def test_default_is_noop(self):
        registry = get_metrics()
        assert isinstance(registry, NullMetricsRegistry)
        assert registry.is_noop
        # Full interface available and inert.
        registry.counter("x").inc()
        registry.gauge("x").set(1)
        registry.histogram("x").observe(1)
        registry.record_completion(TraversalStats())
        registry.record_compile(0.1)
        registry.record_cache(True)
        assert registry.as_dict()["counters"] == {}

    def test_use_metrics_scopes_installation(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            assert get_metrics() is registry
        assert get_metrics().is_noop


class TestTraversalStatsFeed:
    def test_record_completion_feeds_counters_and_histograms(self):
        registry = MetricsRegistry()
        stats = TraversalStats(
            recursive_calls=10,
            edges_considered=20,
            complete_paths_found=2,
            pruned_visited=3,
            pruned_target_bound=4,
            pruned_best_bound=5,
            rescued_by_caution=1,
            elapsed_seconds=0.5,
        )
        stats.record_to(registry)
        summary = registry.as_dict()
        assert summary["counters"]["completions"] == 1
        assert summary["counters"]["traversal.recursive_calls"] == 10
        assert summary["counters"]["prune.visited"] == 3
        assert summary["counters"]["prune.target_bound"] == 4
        assert summary["counters"]["prune.best_bound"] == 5
        assert summary["counters"]["prune.caution_rescues"] == 1
        assert summary["histograms"]["query.recursive_calls"]["count"] == 1
        assert summary["histograms"]["query.elapsed_seconds"]["sum"] == 0.5

    def test_cache_hit_skips_work_counters_but_feeds_histograms(self):
        registry = MetricsRegistry()
        stats = TraversalStats(recursive_calls=10)
        registry.record_completion(stats, cached=False)
        registry.record_completion(stats, cached=True)
        summary = registry.as_dict()
        # Work counted once (the cold run), distribution observed twice.
        assert summary["counters"]["traversal.recursive_calls"] == 10
        assert summary["histograms"]["query.recursive_calls"]["count"] == 2
        assert summary["counters"]["cache.hits"] == 1
        assert summary["counters"]["cache.misses"] == 1
        assert summary["gauges"]["cache.hit_ratio"] == 0.5

    def test_record_cache_updates_hit_ratio(self):
        registry = MetricsRegistry()
        registry.record_cache(True)
        registry.record_cache(True)
        registry.record_cache(False)
        assert registry.as_dict()["gauges"]["cache.hit_ratio"] == pytest.approx(
            2 / 3
        )

    def test_summary_validates_against_checked_in_schema(self):
        registry = MetricsRegistry()
        registry.record_completion(TraversalStats(recursive_calls=5), cached=False)
        registry.record_compile(0.25)
        validate_metrics_summary(registry.as_dict())
