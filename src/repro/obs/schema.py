"""Dependency-free validation of the exported observability formats.

The container has no ``jsonschema`` package, so this module implements
the small JSON-Schema subset the checked-in schemas actually use
(``type``, ``enum``, ``minimum``/``maximum``, ``required``,
``properties``, ``additionalProperties``, ``items``) and ships the two
schemas as package data:

* ``metrics_summary.schema.json`` — the
  :meth:`~repro.obs.metrics.MetricsRegistry.as_dict` summary;
* ``trace_event.schema.json`` — one record of the JSON-lines trace
  log (:meth:`~repro.obs.tracer.RecordingTracer.write_jsonl`).

:func:`validate` returns a list of problem strings (empty = valid);
the ``validate_*`` wrappers add the format-specific cross-field rules a
schema subset without ``oneOf`` cannot express (span records need
``id``/``duration_ms``, event records need ``span``/``at_ms``).  CI
runs ``python -m repro.obs.validate`` over the quick-bench exports so
the formats cannot drift without the schema files changing too.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError

__all__ = [
    "SchemaValidationError",
    "load_builtin_schema",
    "validate",
    "validate_access_records",
    "validate_audit_records",
    "validate_bench_records",
    "validate_kernel_bench",
    "validate_metrics_summary",
    "validate_slo_status",
    "validate_slowlog_entries",
    "validate_trace_events",
]

_SCHEMA_DIR = Path(__file__).parent / "schemas"


class SchemaValidationError(ReproError):
    """An exported artifact does not match its checked-in schema."""

    def __init__(self, problems: list[str]) -> None:
        self.problems = problems
        preview = "; ".join(problems[:5])
        suffix = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
        super().__init__(f"schema validation failed: {preview}{suffix}")


def load_builtin_schema(name: str) -> dict:
    """Load a checked-in schema (``metrics_summary`` or ``trace_event``)."""
    path = _SCHEMA_DIR / f"{name}.schema.json"
    if not path.exists():
        raise FileNotFoundError(f"no builtin schema {name!r} at {path}")
    return json.loads(path.read_text())


_TYPE_CHECKS = {
    "object": lambda value: isinstance(value, dict),
    "array": lambda value: isinstance(value, list),
    "string": lambda value: isinstance(value, str),
    "integer": lambda value: isinstance(value, int)
    and not isinstance(value, bool),
    "number": lambda value: isinstance(value, (int, float))
    and not isinstance(value, bool),
    "boolean": lambda value: isinstance(value, bool),
    "null": lambda value: value is None,
}


def validate(instance: object, schema: dict, path: str = "$") -> list[str]:
    """Check ``instance`` against a schema; returns problem strings."""
    problems: list[str] = []

    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](instance) for t in types):
            problems.append(
                f"{path}: expected {' or '.join(types)}, "
                f"got {type(instance).__name__}"
            )
            return problems  # deeper keywords assume the type matched

    if "enum" in schema and instance not in schema["enum"]:
        problems.append(f"{path}: {instance!r} not in {schema['enum']!r}")

    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if "minimum" in schema and instance < schema["minimum"]:
            problems.append(
                f"{path}: {instance!r} < minimum {schema['minimum']!r}"
            )
        if "maximum" in schema and instance > schema["maximum"]:
            problems.append(
                f"{path}: {instance!r} > maximum {schema['maximum']!r}"
            )

    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                problems.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, value in instance.items():
            key_path = f"{path}.{key}"
            if key in properties:
                problems.extend(validate(value, properties[key], key_path))
            elif additional is False:
                problems.append(f"{path}: unexpected key {key!r}")
            elif isinstance(additional, dict):
                problems.extend(validate(value, additional, key_path))

    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            problems.extend(
                validate(item, schema["items"], f"{path}[{index}]")
            )

    return problems


def validate_metrics_summary(summary: object) -> None:
    """Raise :class:`SchemaValidationError` unless ``summary`` conforms."""
    problems = validate(summary, load_builtin_schema("metrics_summary"))
    if problems:
        raise SchemaValidationError(problems)


#: Fields each trace-record type must carry beyond the shared schema
#: (a ``oneOf`` in spirit, expressed in code).
_RECORD_REQUIRED = {
    "span": ("id", "parent", "depth", "start_ms", "duration_ms"),
    "event": ("span", "at_ms"),
}


def validate_trace_events(records: list) -> None:
    """Validate a parsed JSON-lines trace log (list of record dicts)."""
    schema = load_builtin_schema("trace_event")
    problems: list[str] = []
    for index, record in enumerate(records):
        problems.extend(validate(record, schema, path=f"$[{index}]"))
        if isinstance(record, dict):
            for key in _RECORD_REQUIRED.get(record.get("type"), ()):
                if key not in record:
                    problems.append(
                        f"$[{index}]: {record.get('type')} record missing {key!r}"
                    )
    if problems:
        raise SchemaValidationError(problems)


def validate_slowlog_entries(records: list) -> None:
    """Validate a parsed JSON-lines slow-query log.

    Every entry must match ``slowlog_entry.schema.json`` and every
    element of its ``spans`` array must itself be a valid trace-event
    record — the slow log *is* a retained trace, so both contracts
    apply.
    """
    entry_schema = load_builtin_schema("slowlog_entry")
    trace_schema = load_builtin_schema("trace_event")
    problems: list[str] = []
    for index, record in enumerate(records):
        problems.extend(validate(record, entry_schema, path=f"$[{index}]"))
        if isinstance(record, dict) and isinstance(record.get("spans"), list):
            for at, span in enumerate(record["spans"]):
                problems.extend(
                    validate(
                        span, trace_schema, path=f"$[{index}].spans[{at}]"
                    )
                )
                if isinstance(span, dict):
                    for key in _RECORD_REQUIRED.get(span.get("type"), ()):
                        if key not in span:
                            problems.append(
                                f"$[{index}].spans[{at}]: "
                                f"{span.get('type')} record missing {key!r}"
                            )
    if problems:
        raise SchemaValidationError(problems)


#: Fields each audit-record kind must carry beyond the shared
#: ``seq``/``kind`` (the schema subset has no ``oneOf``, so the
#: discriminated union lives here, like ``_RECORD_REQUIRED`` above).
_AUDIT_REQUIRED = {
    "search": ("root", "target", "e", "pruning"),
    "expand": ("node", "depth", "edge", "label", "length"),
    "cut": ("rule", "node", "depth", "edge", "child", "caution"),
    "rescue": ("rule", "node", "depth", "edge", "child", "label"),
    "complete": ("node", "depth", "edge", "path", "label", "length", "kept"),
    "cache": (
        "scope",
        "query",
        "outcome",
        "fingerprint",
        "lineage_depth",
        "provenance",
    ),
    "budget_trip": ("reason",),
    "agg_select": ("candidates", "optimal_labels", "survivors", "preempted"),
    "score": ("rank", "path", "label", "total", "steps"),
}

#: Evidence each cut rule must attach so ``audit diff`` can check
#: admissibility from the record alone.
_CUT_EVIDENCE = {
    "label_bound": ("bounds",),
    "best_bound": ("frontier",),
}


def validate_audit_records(records: list) -> None:
    """Validate a parsed JSON-lines search audit log.

    Beyond ``audit_record.schema.json`` this enforces the cross-field
    rules the schema subset cannot express: per-kind required fields,
    the evidence a ``label_bound``/``best_bound`` cut must attach, and
    that every ``score`` record's per-edge deltas telescope to its
    reported total — the decomposition is only a trustworthy bill if it
    re-sums.
    """
    schema = load_builtin_schema("audit_record")
    problems: list[str] = []
    for index, record in enumerate(records):
        problems.extend(validate(record, schema, path=f"$[{index}]"))
        if not isinstance(record, dict):
            continue
        kind = record.get("kind")
        for key in _AUDIT_REQUIRED.get(kind, ()):
            if key not in record:
                problems.append(
                    f"$[{index}]: {kind} record missing {key!r}"
                )
        if kind == "cut":
            for key in _CUT_EVIDENCE.get(record.get("rule"), ()):
                if key not in record:
                    problems.append(
                        f"$[{index}]: {record.get('rule')} cut missing "
                        f"its {key!r} evidence"
                    )
        if kind == "score" and isinstance(record.get("steps"), list):
            deltas = [
                step.get("delta")
                for step in record["steps"]
                if isinstance(step, dict)
            ]
            if all(isinstance(delta, int) for delta in deltas) and sum(
                deltas
            ) != record.get("total"):
                problems.append(
                    f"$[{index}]: score deltas sum to {sum(deltas)}, "
                    f"not the reported total {record.get('total')!r}"
                )
    if problems:
        raise SchemaValidationError(problems)


def validate_access_records(records: list) -> None:
    """Validate a parsed JSON-lines structured access log.

    Beyond ``access_record.schema.json`` this enforces the cross-field
    rules the schema subset cannot express: a shed/drain outcome must
    name its reason, and a ``partial`` outcome must carry the budget's
    ``truncation_reason`` — an access log that says *what* degraded
    without saying *why* cannot anchor an incident walkthrough.
    """
    schema = load_builtin_schema("access_record")
    problems: list[str] = []
    for index, record in enumerate(records):
        problems.extend(validate(record, schema, path=f"$[{index}]"))
        if not isinstance(record, dict):
            continue
        outcome = record.get("outcome")
        if outcome in ("shed", "drain") and not record.get("shed_reason"):
            problems.append(
                f"$[{index}]: {outcome} outcome missing its 'shed_reason'"
            )
        if outcome == "partial" and not record.get("truncation_reason"):
            problems.append(
                f"$[{index}]: partial outcome missing 'truncation_reason'"
            )
    if problems:
        raise SchemaValidationError(problems)


def validate_slo_status(payload: object) -> None:
    """Validate one ``slo_status`` payload (``/healthz``, ``/v1/debug``,
    ``BENCH_slo.json``), including the burn-rate arithmetic the schema
    cannot check: each window's reported ``burn_rate`` must equal its
    ``error_rate`` scaled by the objective's error budget."""
    problems = validate(payload, load_builtin_schema("slo_status"))
    if isinstance(payload, dict):
        for at, objective in enumerate(payload.get("objectives", [])):
            if not isinstance(objective, dict):
                continue
            target = objective.get("target")
            if not isinstance(target, (int, float)) or not 0 < target < 1:
                continue
            budget = 1.0 - target
            for wat, window in enumerate(objective.get("windows", [])):
                if not isinstance(window, dict):
                    continue
                rate = window.get("error_rate")
                burn = window.get("burn_rate")
                if isinstance(rate, (int, float)) and isinstance(
                    burn, (int, float)
                ):
                    if abs(burn - rate / budget) > 0.01 + 0.01 * burn:
                        problems.append(
                            f"$.objectives[{at}].windows[{wat}]: burn_rate "
                            f"{burn!r} is not error_rate/budget "
                            f"({rate / budget:.3f})"
                        )
    if problems:
        raise SchemaValidationError(problems)


def validate_kernel_bench(payload: object) -> None:
    """Validate one ``BENCH_kernel.json`` report, including the
    cross-field fact the schema cannot express: a non-null process
    timing must come with its speedup and required bar."""
    problems = validate(payload, load_builtin_schema("kernel_bench"))
    if isinstance(payload, dict):
        batch = payload.get("batch")
        if isinstance(batch, dict) and batch.get(
            "process_jobs4_seconds"
        ) is not None:
            for key in ("speedup", "required"):
                if key not in batch:
                    problems.append(
                        f"$.batch: missing {key!r} alongside a measured "
                        "process timing"
                    )
    if problems:
        raise SchemaValidationError(problems)


def validate_bench_records(records: list) -> None:
    """Validate parsed ``BENCH_history.jsonl`` rows."""
    schema = load_builtin_schema("bench_record")
    problems: list[str] = []
    for index, record in enumerate(records):
        problems.extend(validate(record, schema, path=f"$[{index}]"))
    if problems:
        raise SchemaValidationError(problems)
