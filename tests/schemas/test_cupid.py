"""Tests pinning the synthetic CUPID schema to the published size and
the structural character DESIGN.md claims for it."""

from repro.model.graph import SchemaGraph
from repro.model.kinds import RelationshipKind
from repro.schemas.cupid import (
    AUXILIARY_CLASSES,
    CUPID_CLASS_COUNT,
    CUPID_RELATIONSHIP_COUNT,
    build_cupid_schema,
)


class TestPublishedSize:
    def test_class_count(self, cupid):
        assert cupid.user_class_count == CUPID_CLASS_COUNT == 92

    def test_relationship_count(self, cupid):
        assert cupid.relationship_count == CUPID_RELATIONSHIP_COUNT == 364

    def test_deterministic_build(self, cupid):
        again = build_cupid_schema()
        assert sorted(
            (r.source, r.name, r.target, r.kind.symbol)
            for r in again.relationships()
        ) == sorted(
            (r.source, r.name, r.target, r.kind.symbol)
            for r in cupid.relationships()
        )


class TestStructuralCharacter:
    def test_dominated_by_part_whole(self, cupid):
        by_kind = {}
        for rel in cupid.relationships():
            by_kind[rel.kind] = by_kind.get(rel.kind, 0) + 1
        part_whole = by_kind.get(RelationshipKind.HAS_PART, 0) + by_kind.get(
            RelationshipKind.IS_PART_OF, 0
        )
        taxonomic = by_kind.get(RelationshipKind.ISA, 0) + by_kind.get(
            RelationshipKind.MAY_BE, 0
        )
        assert part_whole > taxonomic
        assert part_whole > 100

    def test_part_tree_is_deep(self, cupid):
        """experiment -> ... -> stomata is an 8-edge Has-Part chain."""
        graph = SchemaGraph(cupid)
        chain = [
            "experiment", "simulation", "crop", "canopy", "canopy_layer",
            "leaf_class", "leaf", "stomata",
        ]
        for parent, child in zip(chain, chain[1:]):
            edge = next(
                e for e in graph.edges_from(parent) if e.target == child
            )
            assert edge.kind is RelationshipKind.HAS_PART

    def test_auxiliary_hubs_are_widely_connected(self, cupid):
        graph = SchemaGraph(cupid)
        for hub in AUXILIARY_CLASSES:
            assert graph.out_degree(hub) >= 5

    def test_isa_layers_exist(self, cupid):
        assert set(cupid.isa_children("instrument")) >= {
            "thermometer",
            "anemometer",
        }
        assert "photosynthesis" in cupid.isa_children("process")

    def test_validates(self, cupid):
        assert cupid.validate() == []

    def test_shared_attribute_names_create_ambiguity(self, cupid):
        # 'value' is the name of many attributes — the q02 ambiguity
        assert len(cupid.relationships_named("value")) >= 4
