"""Rolling-window SLO monitoring with multi-window burn rates.

The serving tier promises two things per window of traffic: requests
are *answered* (availability — no 500s, no sheds) and answered *fast
enough* (a latency threshold).  This module measures both as SLOs in
the SRE style:

* every response lands in a coarse time bucket (``bucket_s`` seconds)
  as ``total`` plus one ``bad`` count per objective;
* an **error rate** over a window is ``bad / total``; the **burn
  rate** is the error rate divided by the objective's error budget
  (``1 - target``) — burn 1.0 means the budget is being consumed
  exactly as provisioned, 14.4 means a 30-day budget burns in 2 days;
* alerting is **multi-window**: ``page`` requires the burn to exceed
  ``page_burn`` over *both* the long window (sustained damage) and the
  short window (still happening right now), which is what keeps a
  recovered incident from paging an hour later.  ``warn`` applies
  ``warn_burn`` the same way.

The monitor is clock-injectable (tests drive a fake monotonic clock
through arbitrary windows in microseconds), thread-safe, and bounded:
buckets older than the longest window are pruned on every record, so
memory is ``O(slow_window / bucket_s)`` regardless of uptime.

:meth:`SLOMonitor.status` renders the whole evaluation as one JSON
payload (validated against the checked-in ``slo_status.schema.json``)
— the ``/healthz`` and ``/v1/debug`` endpoints embed it verbatim — and
:meth:`SLOMonitor.export_gauges` mirrors the numbers into labelled
Prometheus gauges through the existing promtext path.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections.abc import Callable

from repro.obs.metrics import labelled

__all__ = ["Objective", "SLOMonitor", "SLO_STATUS_VERSION"]

#: Format version stamped on every exported ``slo_status`` payload.
SLO_STATUS_VERSION = 1

#: Alert states, mild to severe (the gauge exports the index).
STATES = ("ok", "warn", "page")

#: Statuses counted against the availability objective: genuine server
#: failure (5xx) and load shedding (429) both mean "the caller did not
#: get an answer"; 4xx client errors and 206 anytime answers do not.
_UNAVAILABLE_OVER = 500
_SHED_STATUS = 429


@dataclasses.dataclass(frozen=True)
class Objective:
    """One SLO: a success-ratio target, optionally latency-bounded.

    ``threshold_ms`` of ``None`` makes this an *availability*
    objective (bad = 5xx or shed); otherwise it is a *latency*
    objective (bad = the response took longer than the threshold).
    """

    name: str
    target: float
    threshold_ms: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"target must be in (0, 1), got {self.target!r}"
            )
        if self.threshold_ms is not None and self.threshold_ms <= 0:
            raise ValueError("threshold_ms must be positive")

    def is_bad(self, status: int, latency_ms: float) -> bool:
        if self.threshold_ms is None:
            return status >= _UNAVAILABLE_OVER or status == _SHED_STATUS
        return latency_ms > self.threshold_ms

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target


class SLOMonitor:
    """Availability + latency SLOs over rolling windows.

    Parameters
    ----------
    availability_target:
        Fraction of requests that must be answered (non-5xx, non-shed).
    latency_threshold_ms, latency_target:
        The latency objective: ``latency_target`` of requests must
        finish within ``latency_threshold_ms``.
    windows:
        Window lengths in seconds, shortest to longest.  The shortest
        and longest are the multi-window alerting pair; the rest are
        reported for operators.
    bucket_s:
        Bucket granularity; window sums are exact to one bucket.
    page_burn, warn_burn:
        Burn-rate thresholds for the two alert levels.
    clock:
        Monotonic time source, injectable for deterministic tests.
    """

    def __init__(
        self,
        availability_target: float = 0.999,
        latency_threshold_ms: float = 250.0,
        latency_target: float = 0.99,
        windows: tuple[float, ...] = (60.0, 300.0, 3600.0),
        bucket_s: float = 5.0,
        page_burn: float = 14.4,
        warn_burn: float = 6.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not windows or any(w <= 0 for w in windows):
            raise ValueError("windows must be positive and non-empty")
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        if page_burn <= warn_burn or warn_burn <= 0:
            raise ValueError("need page_burn > warn_burn > 0")
        self.objectives: tuple[Objective, ...] = (
            Objective("availability", availability_target),
            Objective(
                "latency", latency_target, threshold_ms=latency_threshold_ms
            ),
        )
        self.windows = tuple(sorted(windows))
        self.bucket_s = bucket_s
        self.page_burn = page_burn
        self.warn_burn = warn_burn
        self._clock = clock
        #: bucket index -> [total, bad_obj0, bad_obj1, ...]
        self._buckets: dict[int, list[int]] = {}
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------

    def record(self, status: int, latency_ms: float) -> None:
        """Count one finished response into the current bucket."""
        index = int(self._clock() / self.bucket_s)
        with self._lock:
            bucket = self._buckets.get(index)
            if bucket is None:
                bucket = [0] * (1 + len(self.objectives))
                self._buckets[index] = bucket
                self._prune(index)
            bucket[0] += 1
            for at, objective in enumerate(self.objectives, start=1):
                if objective.is_bad(status, latency_ms):
                    bucket[at] += 1

    def _prune(self, now_index: int) -> None:
        """Drop buckets past the longest window (called under the lock,
        only when a new bucket opens — amortized O(1) per request)."""
        horizon = now_index - int(self.windows[-1] / self.bucket_s) - 1
        for index in [i for i in self._buckets if i < horizon]:
            del self._buckets[index]

    # -- evaluation ---------------------------------------------------

    def _window_counts(self, window_s: float) -> tuple[int, list[int]]:
        """(total, bad-per-objective) over the trailing ``window_s``."""
        now_index = int(self._clock() / self.bucket_s)
        first = now_index - int(window_s / self.bucket_s)
        total = 0
        bad = [0] * len(self.objectives)
        with self._lock:
            for index, bucket in self._buckets.items():
                if first < index <= now_index:
                    total += bucket[0]
                    for at in range(len(self.objectives)):
                        bad[at] += bucket[1 + at]
        return total, bad

    @staticmethod
    def _burn(bad: int, total: int, budget: float) -> tuple[float, float]:
        """(error_rate, burn_rate) with the empty-window convention
        that no traffic burns no budget."""
        if total == 0:
            return 0.0, 0.0
        error_rate = bad / total
        return error_rate, error_rate / budget

    def status(self) -> dict:
        """The full evaluation as the ``slo_status`` JSON payload."""
        per_window: dict[float, tuple[int, list[int]]] = {
            window: self._window_counts(window) for window in self.windows
        }
        objectives = []
        overall = 0
        for at, objective in enumerate(self.objectives):
            windows = []
            burns: dict[float, float] = {}
            for window in self.windows:
                total, bad = per_window[window]
                error_rate, burn = self._burn(
                    bad[at], total, objective.error_budget
                )
                burns[window] = burn
                windows.append(
                    {
                        "window_s": window,
                        "total": total,
                        "bad": bad[at],
                        "error_rate": round(error_rate, 6),
                        "burn_rate": round(burn, 3),
                    }
                )
            fast, slow = self.windows[0], self.windows[-1]
            if burns[fast] > self.page_burn and burns[slow] > self.page_burn:
                state = 2
            elif burns[fast] > self.warn_burn and burns[slow] > self.warn_burn:
                state = 1
            else:
                state = 0
            overall = max(overall, state)
            entry: dict = {
                "name": objective.name,
                "target": objective.target,
                "threshold_ms": objective.threshold_ms,
                "state": STATES[state],
                "windows": windows,
            }
            objectives.append(entry)
        return {
            "version": SLO_STATUS_VERSION,
            "state": STATES[overall],
            "page_burn": self.page_burn,
            "warn_burn": self.warn_burn,
            "objectives": objectives,
        }

    def export_gauges(self, metrics) -> None:
        """Mirror the evaluation into labelled Prometheus gauges."""
        payload = self.status()
        metrics.gauge("slo.state").set(
            float(STATES.index(payload["state"]))
        )
        for objective in payload["objectives"]:
            for window in objective["windows"]:
                labels = {
                    "objective": objective["name"],
                    "window": f"{window['window_s']:g}s",
                }
                metrics.gauge(
                    labelled("slo.burn_rate", **labels)
                ).set(window["burn_rate"])
                metrics.gauge(
                    labelled("slo.error_rate", **labels)
                ).set(window["error_rate"])

    def __repr__(self) -> str:
        return (
            f"SLOMonitor(windows={self.windows}, "
            f"state={self.status()['state']})"
        )
