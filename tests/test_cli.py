"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.model.instances import Database
from repro.model.persistence import save_database
from repro.model.serialization import save_schema
from repro.schemas.university import build_university_schema


class TestComplete:
    def test_builtin_university(self, capsys):
        code = main(["complete", "--builtin", "university", "ta ~ name"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ta@>grad@>student@>person.name" in out
        assert "2 completion(s)" in out

    def test_verbose(self, capsys):
        main(["complete", "--builtin", "university", "--verbose", "ta ~ name"])
        assert "semantic length" in capsys.readouterr().out

    def test_e_parameter(self, capsys):
        main(["complete", "--builtin", "university", "-e", "3",
              "department ~ ssn"])
        out = capsys.readouterr().out
        assert "4 completion(s)" in out

    def test_exclusions(self, capsys):
        code = main(
            [
                "complete",
                "--builtin",
                "university",
                "--exclude",
                "person",
                "ta ~ name",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "person" not in out.splitlines()[1]

    def test_no_completion_exit_code(self, capsys):
        code = main(["complete", "--builtin", "university", "ta ~ ghost"])
        assert code == 1

    def test_schema_file_json(self, tmp_path, capsys):
        path = tmp_path / "uni.json"
        save_schema(build_university_schema(), path)
        code = main(["complete", "--schema", str(path), "ta ~ name"])
        assert code == 0

    def test_schema_file_dsl(self, tmp_path, capsys):
        path = tmp_path / "tiny.dsl"
        path.write_text(
            "schema tiny\nclass person\n    attr name\n"
            "class student isa person\n"
        )
        code = main(["complete", "--schema", str(path), "student ~ name"])
        out = capsys.readouterr().out
        assert code == 0
        assert "student@>person.name" in out

    def test_parse_error_is_reported(self, capsys):
        code = main(["complete", "--builtin", "university", "ta !! name"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestEnumerate:
    def test_lists_and_counts(self, capsys):
        code = main(
            ["enumerate", "--builtin", "university", "--limit", "10",
             "ta ~ name"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "consistent acyclic path(s)" in out
        assert out.count("\n") >= 3

    def test_rejects_general_expressions(self, capsys):
        code = main(["enumerate", "--builtin", "university", "ta~x~y"])
        assert code == 2


class TestProfile:
    def test_profile_output(self, capsys):
        code = main(["profile", "--builtin", "cupid", "--suggest-hubs"])
        out = capsys.readouterr().out
        assert code == 0
        assert "user classes:        92" in out
        assert "units_registry" in out

    def test_profile_without_suggestions(self, capsys):
        main(["profile", "--builtin", "university"])
        out = capsys.readouterr().out
        assert "suggested" not in out


class TestQuery:
    def test_query_saved_database(self, tmp_path, capsys):
        schema = build_university_schema()
        db = Database(schema)
        bob = db.create("ta")
        db.set_attribute(bob, "name", "bob")
        path = tmp_path / "db.json"
        save_database(db, path)

        code = main(["query", "--db", str(path), "get ta ~ name"])
        out = capsys.readouterr().out
        assert code == 0
        assert "'bob'" in out

    def test_missing_db_file(self, capsys):
        code = main(["query", "--db", "/nonexistent.json", "get a.b"])
        assert code == 2


class TestExplain:
    def test_explain_returned(self, capsys):
        code = main(
            [
                "explain",
                "--builtin",
                "university",
                "ta ~ name",
                "ta@>grad@>student@>person.name",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[returned]" in out

    def test_explain_dominated(self, capsys):
        main(
            [
                "explain",
                "--builtin",
                "university",
                "ta ~ name",
                "ta@>grad@>student.take.name",
            ]
        )
        out = capsys.readouterr().out
        assert "[connector_dominated]" in out
        assert "stronger" in out

    def test_explain_analyze_prints_decision_tree(self, capsys):
        code = main(
            ["explain", "--builtin", "university", "ta ~ name", "--analyze"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "decision tree:" in out
        assert "score decomposition" in out

    def test_explain_analyze_exports_valid_jsonl(self, tmp_path, capsys):
        from repro.obs.schema import validate_audit_records

        audit_path = tmp_path / "audit.jsonl"
        code = main(
            [
                "explain",
                "--builtin",
                "university",
                "ta ~ name",
                "--analyze",
                "--audit-out",
                str(audit_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "audit record(s)" in out
        records = [
            json.loads(line)
            for line in audit_path.read_text().splitlines()
            if line
        ]
        assert records
        validate_audit_records(records)

    def test_explain_without_candidate_or_analyze_errors(self, capsys):
        code = main(["explain", "--builtin", "university", "ta ~ name"])
        assert code == 2
        assert "CANDIDATE" in capsys.readouterr().err


class TestFox:
    def test_fox_query(self, tmp_path, capsys):
        schema = build_university_schema()
        db = Database(schema)
        bob = db.create("ta")
        db.set_attribute(bob, "name", "bob")
        alice = db.create("student")
        db.set_attribute(alice, "name", "alice")
        path = tmp_path / "db.json"
        save_database(db, path)

        code = main(
            [
                "fox",
                "--db",
                str(path),
                "for s in student select s@>person.name",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 row(s)" in out
        assert "alice" in out and "bob" in out

    def test_fox_syntax_error(self, tmp_path, capsys):
        schema = build_university_schema()
        path = tmp_path / "db.json"
        save_database(Database(schema), path)
        code = main(["fox", "--db", str(path), "nonsense"])
        assert code == 2


class TestConvert:
    def test_dsl_to_json_and_back(self, tmp_path, capsys):
        dsl = tmp_path / "s.dsl"
        dsl.write_text("schema s\nclass a\n    attr x\n")
        as_json = tmp_path / "s.json"
        assert main(["convert", str(dsl), str(as_json)]) == 0
        document = json.loads(as_json.read_text())
        assert document["format"] == "repro-schema"

        back = tmp_path / "back.dsl"
        assert main(["convert", str(as_json), str(back)]) == 0
        assert "class a" in back.read_text()


class TestParser:
    def test_missing_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_schema_and_builtin_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(
                ["complete", "--builtin", "university", "--schema", "x",
                 "a ~ b"]
            )


class TestObservabilityFlags:
    def test_trace_prints_span_tree(self, capsys):
        # A bare --trace must come after the expression (or use
        # --trace=FILE): argparse's nargs="?" would otherwise swallow
        # the positional.
        # Drop memoized artifacts so the completion cache starts cold
        # and the trace shows a full run (traverse/rank), regardless of
        # what other tests completed on the shared university artifact.
        from repro.core.compiled import invalidate

        invalidate()
        code = main(
            ["complete", "--builtin", "university", "ta ~ name", "--trace"]
        )
        out = capsys.readouterr().out
        assert code == 0
        lines = out.splitlines()
        assert any(line.startswith("complete") and "ms" in line
                   for line in lines)
        assert any("traverse" in line for line in lines)
        assert any("rank" in line for line in lines)

    def test_trace_to_file_writes_valid_jsonl(self, tmp_path, capsys):
        from repro.obs.schema import validate_trace_events

        target = tmp_path / "trace.jsonl"
        code = main(
            [
                "complete",
                "--builtin",
                "university",
                f"--trace={target}",
                "ta ~ name",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"event(s) written to {target}" in out
        records = [
            json.loads(line)
            for line in target.read_text().splitlines()
            if line
        ]
        assert records
        validate_trace_events(records)

    def test_metrics_prints_valid_summary(self, capsys):
        from repro.obs.schema import validate_metrics_summary

        code = main(
            ["complete", "--builtin", "university", "--metrics", "ta ~ name"]
        )
        out = capsys.readouterr().out
        assert code == 0
        summary = json.loads(out[out.index("{"):])
        validate_metrics_summary(summary)
        assert summary["counters"]["completions"] == 1

    def test_verbose_reports_cache_info(self, capsys):
        main(
            ["complete", "--builtin", "university", "--verbose", "ta ~ name"]
        )
        out = capsys.readouterr().out
        assert "[cache:" in out
        assert "hit(s)" in out

    def test_prom_prints_exposition(self, capsys):
        # Like bare --trace, bare --prom must follow the expression.
        code = main(
            ["complete", "--builtin", "university", "ta ~ name", "--prom"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "# TYPE repro_completions_total counter" in out
        assert "repro_completions_total 1" in out
        assert 'le="+Inf"' in out

    def test_prom_to_file(self, tmp_path, capsys):
        target = tmp_path / "metrics.prom"
        code = main(
            [
                "complete",
                "--builtin",
                "university",
                f"--prom={target}",
                "ta ~ name",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"line(s) written to {target}" in out
        assert "repro_completions_total 1" in target.read_text()

    def test_slow_log_prints_render(self, capsys):
        code = main(
            ["complete", "--builtin", "university", "ta ~ name", "--slow-log"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 retained of 1 observed" in out
        assert "ta ~ name" in out

    def test_slow_log_to_file_writes_valid_jsonl(self, tmp_path, capsys):
        from repro.obs.schema import validate_slowlog_entries

        target = tmp_path / "slow.jsonl"
        code = main(
            [
                "complete",
                "--builtin",
                "university",
                f"--slow-log={target}",
                "ta ~ name",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"1 entry written to {target}" in out
        records = [
            json.loads(line)
            for line in target.read_text().splitlines()
            if line
        ]
        validate_slowlog_entries(records)
        (record,) = records
        assert record["kind"] == "complete"
        assert record["query"] == "ta ~ name"
        assert record["exhausted"] is True

    def test_slow_ms_wires_the_retention_threshold(self, capsys):
        # An absurd threshold cannot be crossed, so the completion is
        # retained only through the top-K fallback, not the threshold.
        code = main(
            [
                "complete",
                "--builtin",
                "university",
                "--slow-ms",
                "60000",
                "ta ~ name",
                "--slow-log",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "threshold 60000ms" in out
        assert "[top_k]" in out
        assert "[threshold]" not in out

    def test_profile_prints_per_span_report(self, capsys):
        code = main(
            ["complete", "--builtin", "university", "ta ~ name", "--profile"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "span '" in out
        assert "cumulative" in out

    def test_profile_to_file_writes_collapsed_stacks(self, tmp_path, capsys):
        from repro.core.compiled import invalidate

        invalidate()  # cold cache => the completion spans do real work
        target = tmp_path / "profile.collapsed"
        code = main(
            [
                "complete",
                "--builtin",
                "university",
                f"--profile={target}",
                "ta ~ name",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"written to {target}" in out
        lines = target.read_text().splitlines()
        assert lines
        for line in lines:
            frames, _, count = line.rpartition(" ")
            assert frames.startswith("span:")
            assert int(count) >= 1

    def test_verbose_reports_budget_counters(self, capsys):
        main(
            ["complete", "--builtin", "university", "--verbose", "ta ~ name"]
        )
        out = capsys.readouterr().out
        assert "[budget: 0 trip(s), 0 degrade(s)]" in out

    def test_budget_trip_still_flushes_slow_log(self, tmp_path, capsys):
        # Acceptance: exit code 3 (tripped budget) must still write the
        # slow-log file -- the tripped query is the one worth keeping.
        target = tmp_path / "slow.jsonl"
        code = main(
            [
                "complete",
                "--builtin",
                "cupid",
                "--max-nodes",
                "5",
                f"--slow-log={target}",
                "experiment ~ conductance",
            ]
        )
        captured = capsys.readouterr()
        assert code == 3
        assert "error:" in captured.err
        (record,) = [
            json.loads(line)
            for line in target.read_text().splitlines()
            if line
        ]
        assert record["exhausted"] is False
        assert record["truncation_reason"] == "nodes"
        assert "BudgetExceeded" in record["error"]

    def test_query_supports_trace(self, tmp_path, capsys):
        schema = build_university_schema()
        db = Database(schema)
        bob = db.create("ta")
        db.set_attribute(bob, "name", "bob")
        path = tmp_path / "db.json"
        save_database(db, path)

        code = main(["query", "--db", str(path), "get ta ~ name", "--trace"])
        out = capsys.readouterr().out
        assert code == 0
        assert any(line.startswith("query") for line in out.splitlines())
        assert "evaluate" in out
