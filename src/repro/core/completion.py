r"""Algorithm 2 — depth-first search for path-expression completion
(paper Section 4.5).

This is the paper's Algorithm 1 (a traditional path-computation DFS)
enhanced with:

* **caution sets** (Section 4.1): because AGG does not distribute over
  CON, a dominated label may still need exploration when a dominating
  label at the node sits in its caution set;
* **path reconstruction** (Section 4.2): the pruning tests use
  set-membership (``l_u ∈ AGG*(...)``) rather than set-change, so paths
  tied with the current best are still explored and reported;
* **the Inheritance Semantics Criterion** (Section 4.3): applied inside
  ``update(paths)`` whenever a complete path is recorded;
* **AGG\*** (Section 4.4): the ``E`` parameter relaxes the semantic-length
  cut to the E lowest distinct lengths.

The traversal is iterative rather than recursive (real schemas produce
search stacks deeper than CPython's recursion limit), but mirrors the
paper's ``traverse`` routine line by line; ``stats.recursive_calls``
counts what would be recursive invocations.
"""

from __future__ import annotations

import dataclasses
import time

from repro.algebra.agg import Aggregator
from repro.algebra.caution import CautionSets
from repro.algebra.connectors import ALL_CONNECTORS
from repro.algebra.labels import IDENTITY_LABEL, PathLabel
from repro.algebra.order import DEFAULT_ORDER, PartialOrder
from repro.core.ast import ConcretePath
from repro.core.audit import get_audit, record_scores
from repro.core.closure import (
    _CONI,
    _LAST_CLASS_BY_INDEX,
    _N_CONNECTORS,
    _SORT_RANK,
    SchemaClosure,
    TargetTables,
    has_static_adjacency,
    resolve_pruning,
)
from repro.core.inheritance_criterion import apply_preemption
from repro.core.kernel import (
    FlatTables,
    KernelBudgetTrip,
    resolve_kernel,
    run_flat,
)
from repro.core.stats import TraversalStats
from repro.core.target import Target
from repro.errors import BudgetExceededError
from repro.model.graph import SchemaGraph
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.resilience.budget import Budget, BudgetMeter, get_budget

__all__ = ["CompletionSearch", "CompletionResult", "complete_paths"]


#: Cutoff-table sentinels: ``_NO_CUTOFF`` means "any semantic length
#: passes" (fewer than E distinct lengths on the frontier), ``-1`` means
#: "always fails" (the connector is beaten outright), and are chosen so
#: the single comparison ``length > cutoffs[c]`` decides membership.
_NO_CUTOFF = 1 << 30


def _rebuild_cutoffs(
    best_target: list[PathLabel],
    cutoffs: list[int],
    beaten_by: list[int],
    e: int,
) -> int:
    """Rewrite ``keeps(·, best_target)`` as per-connector length cutoffs.

    For every connector ``c``, ``cutoffs[c]`` becomes the largest
    semantic length at which a label with connector ``c`` still passes
    :meth:`~repro.algebra.agg.Aggregator.keeps` against ``best_target``
    (``-1`` when ``c`` is beaten by a frontier connector).  The survivor
    set is recomputed per candidate connector because the candidate's
    own bit can knock frontier members out of the connector filter —
    which is why one global threshold would be wrong.  Returns the
    frontier's connector bitmask.
    """
    bt_mask = 0
    for known in best_target:
        bt_mask |= 1 << known.connector.index
    for ci in range(_N_CONNECTORS):
        present = bt_mask | (1 << ci)
        if present & beaten_by[ci]:
            cutoffs[ci] = -1
            continue
        lengths = {
            known.semantic_length
            for known in best_target
            if not (present & beaten_by[known.connector.index])
        }
        # keeps() counts the candidate's own length among the distinct
        # survivor lengths: with fewer than E frontier lengths any
        # candidate fits inside the window, otherwise the window's last
        # slot is the E-th smallest frontier length.
        if len(lengths) < e:
            cutoffs[ci] = _NO_CUTOFF
        else:
            cutoffs[ci] = sorted(lengths)[e - 1]
    return bt_mask


class _BudgetTrip(Exception):
    """Internal control flow: unwinds the traversal on a tripped meter.

    Never escapes :meth:`CompletionSearch.run` — it is converted there
    into an anytime partial result (or a
    :class:`~repro.errors.BudgetExceededError` carrying one).
    """

    def __init__(self, reason: str) -> None:
        self.reason = reason


@dataclasses.dataclass(frozen=True)
class CompletionResult:
    """Outcome of one completion search.

    ``paths`` are the optimal consistent completions, best label first
    (ties broken by semantic length, then actual length, then text).
    ``labels`` are the surviving optimal labels (the best[T] set).

    ``exhausted`` is the anytime flag: ``True`` means the search space
    was fully explored at the requested parameters, so ``paths`` is
    *the* optimal set.  ``False`` means a resource budget tripped (or
    the degradation ladder answered at a lower E); every path is still
    a genuinely consistent completion, but the set may be incomplete or
    non-optimal, and ``truncation_reason`` says why
    (:class:`~repro.resilience.budget.TruncationReason`).  Partial
    results are never stored in the completion cache.

    ``support`` is the result's dependency footprint for surgical cache
    invalidation: the set of class names reachable from the root in the
    traversal graph at search time.  Any edge insertion or deletion that
    could change this result has its source class in the set — an
    insertion at an unreachable class can never extend a path from the
    root, and a deletion at one can never break an existing optimal
    path — so a schema delta whose touched classes are disjoint from the
    support provably leaves the result byte-identical
    (:meth:`CompletionCache.adopt
    <repro.core.compiled.CompletionCache.adopt>`).  An *empty* support
    means "unknown" and is treated as intersecting everything; results
    produced outside the single-gap search (general expressions,
    validation) stay conservatively evictable.
    """

    root: str
    target_description: str
    paths: tuple[ConcretePath, ...]
    labels: tuple[PathLabel, ...]
    stats: TraversalStats
    exhausted: bool = True
    truncation_reason: str | None = None
    support: frozenset[str] = frozenset()

    @property
    def expressions(self) -> list[str]:
        """The completions rendered as path-expression strings."""
        return [str(path) for path in self.paths]

    @property
    def is_empty(self) -> bool:
        return not self.paths

    @property
    def is_unique(self) -> bool:
        """True when the user has nothing left to choose."""
        return len(self.paths) == 1

    @property
    def is_partial(self) -> bool:
        """True for anytime results (budget-truncated or degraded)."""
        return not self.exhausted

    def __str__(self) -> str:
        suffix = (
            f" [partial: {self.truncation_reason}]" if self.is_partial else ""
        )
        lines = [
            f"completions of {self.root} ~ {self.target_description} "
            f"({len(self.paths)}){suffix}:"
        ]
        for path in self.paths:
            lines.append(f"  {path}  {path.label()}")
        return "\n".join(lines)


class CompletionSearch:
    """A reusable completion engine bound to a graph and an algebra.

    Parameters
    ----------
    graph:
        The schema graph to search (domain-knowledge exclusions are
        applied by restricting the graph before constructing the search).
    order:
        The better-than partial order; defaults to the paper's.
    e:
        The AGG* relaxation parameter (E >= 1).
    use_caution_sets:
        Disable only for the ablation that demonstrates lost answers.
    apply_inheritance_criterion:
        Disable only for ablations; on by default as in the paper.
    max_depth:
        Optional bound on path edge count (None = unbounded, the
        paper's setting; acyclicity already bounds depth by the class
        count).
    caution_sets:
        Optional precomputed :class:`~repro.algebra.caution.CautionSets`
        for ``order`` — a :class:`~repro.core.compiled.CompiledSchema`
        passes its compiled artifact here so every search it hands out
        shares one instance.  Ignored when ``use_caution_sets`` is off.
    pruning:
        ``"closure"`` (the default) enables the compile-time closure cut
        rules — reachability pruning and label-bound pruning (see
        :mod:`repro.core.closure`); ``"none"`` runs the paper's
        Algorithm 2 verbatim.  ``None`` resolves via the
        ``REPRO_PRUNING`` environment variable.  Both modes return
        identical exhausted results; the knob exists for A/B
        verification and paper-fidelity measurements.
    closure:
        Optional precomputed :class:`~repro.core.closure.SchemaClosure`
        for ``graph`` (a compiled artifact shares one across all its
        searches).  Ignored when ``pruning="none"``; built on demand
        (content-cached) otherwise.
    kernel:
        ``"interpreted"`` (the default) runs the pure-Python loops;
        ``"flat"`` runs the integer-specialized kernel
        (:mod:`repro.core.kernel`) wherever the closure loop would run
        — byte-identical results and stats, selected per search and
        part of every completion-cache key.  ``None`` resolves via the
        ``REPRO_KERNEL`` environment variable.  Audited searches always
        take the interpreted loop (the audit log instruments its
        decision sites), as do ``pruning="none"`` and dynamic graphs.
    """

    def __init__(
        self,
        graph: SchemaGraph,
        order: PartialOrder | None = None,
        e: int = 1,
        use_caution_sets: bool = True,
        apply_inheritance_criterion: bool = True,
        max_depth: int | None = None,
        caution_sets: CautionSets | None = None,
        pruning: str | None = None,
        closure: SchemaClosure | None = None,
        kernel: str | None = None,
    ) -> None:
        self.graph = graph
        self.order = order if order is not None else DEFAULT_ORDER
        self.aggregator = Aggregator(self.order, e=e)
        if not use_caution_sets:
            self.caution = None
        elif caution_sets is not None:
            self.caution = caution_sets
        else:
            self.caution = CautionSets(self.order)
        self.apply_inheritance_criterion = apply_inheritance_criterion
        self.max_depth = max_depth
        self.pruning = resolve_pruning(pruning)
        self.kernel = resolve_kernel(kernel)
        if self.pruning == "closure" and has_static_adjacency(graph):
            self.closure = (
                closure if closure is not None else SchemaClosure.for_graph(graph)
            )
        else:
            # pruning="none", or a graph with a dynamic edges_from
            # (fault injection, monkeypatched latency): the closure
            # tables would bypass the interception seam, so such graphs
            # always take the reference loop.
            self.closure = None
        # Interned label-extension rows for the closure loop, keyed by
        # label id.  Each entry is ``(label, row)`` — the entry pins the
        # label, so its id can never be reused while the row exists; the
        # traversal only ever feeds canonical labels (the shared
        # IDENTITY_LABEL root or earlier row fills), so the table is
        # bounded by the number of distinct label values.  Shared across
        # runs of this search instance; safe under concurrent runs (dict
        # get/set are atomic and rows for one label are interchangeable).
        self._ext_rows: dict[int, tuple[PathLabel, list]] = {}
        # Flat-kernel adjacency, built lazily per TargetTables instance
        # and keyed by its id — each entry pins the tables object, so
        # the id can never be reused while the entry exists (the
        # ``_ext_rows`` precedent).
        self._flat: dict[int, tuple[TargetTables, FlatTables]] = {}
        # Memoized per-root support sets (reachable class names) for
        # result footprints; the adjacency is frozen, so each root's set
        # is computed at most once per search instance.
        self._supports: dict[str, frozenset[str]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self,
        root: str,
        target: Target,
        budget: Budget | None = None,
        meter: BudgetMeter | None = None,
    ) -> CompletionResult:
        """Find the optimal consistent completions from ``root``.

        Mirrors the paper's ``traverse(S, Theta, S)`` invocation.

        Resource governance: ``budget`` (or, when omitted, the ambient
        :func:`repro.resilience.budget.get_budget`) bounds the
        traversal.  On a trip the best-so-far completions are finalized
        into an anytime result flagged ``exhausted=False``; under the
        budget's ``partial_ok`` policy it is returned, otherwise
        :class:`~repro.errors.BudgetExceededError` is raised carrying
        it.  Pass an armed ``meter`` instead to share one budget across
        several searches (the segments of a general expression, the
        engine's degradation ladder); the meter's own budget then
        supplies the policy.
        """
        self.graph.schema.get_class(root)
        if meter is None:
            if budget is None:
                budget = get_budget()
            if budget is not None and not budget.is_unlimited:
                meter = budget.start()
        stats = TraversalStats()
        started = time.perf_counter()
        state = _SearchState(
            best_target=[],
            complete=[],
            stats=stats,
        )
        # Per-target closure tables; ``None`` (pruning off, or a target
        # type the closure cannot key) falls back to the paper's cuts.
        tables = (
            self.closure.tables_for(target)
            if self.closure is not None
            else None
        )
        audit = get_audit()
        if audit.enabled:
            audit.record(
                "search",
                root=root,
                target=target.describe(),
                e=self.aggregator.e,
                pruning=self.pruning if tables is not None else "none",
            )
        with get_tracer().span(
            "traverse",
            root=root,
            target=target.describe(),
            e=self.aggregator.e,
            pruning=self.pruning if tables is not None else "none",
        ) as span:
            reason = self._traverse(
                root,
                IDENTITY_LABEL,
                ConcretePath.start(root),
                state,
                target,
                meter,
                tables,
            )
            span.set(
                calls=stats.recursive_calls,
                edges=stats.edges_considered,
                complete_paths=stats.complete_paths_found,
                pruned_visited=stats.pruned_visited,
                pruned_target_bound=stats.pruned_target_bound,
                pruned_best_bound=stats.pruned_best_bound,
                caution_rescues=stats.rescued_by_caution,
                pruned_reachability=stats.nodes_pruned_reachability,
                pruned_bound=stats.nodes_pruned_bound,
            )
            if reason is not None:
                span.set(truncated=reason)
        paths = self._finalize(state)
        stats.elapsed_seconds = time.perf_counter() - started
        labels = tuple(
            self.aggregator.aggregate([path.label() for path in paths])
        )
        if reason is not None:
            stats.budget_trips += 1
            get_metrics().counter("budget.trips").inc()
        if audit.enabled:
            if reason is not None:
                audit.record("budget_trip", reason=reason)
            record_scores(audit, paths)
        result = CompletionResult(
            root=root,
            target_description=target.describe(),
            paths=tuple(paths),
            labels=labels,
            stats=stats,
            exhausted=reason is None,
            truncation_reason=reason,
            support=self._support_of(root),
        )
        if reason is not None and meter is not None and not meter.budget.partial_ok:
            raise BudgetExceededError(reason, partial=result)
        return result

    def _support_of(self, root: str) -> frozenset[str]:
        """Class names reachable from ``root`` in the traversal graph.

        Every path the search can ever produce — and every edge it can
        ever consider — lives inside this set, which makes it a sound
        dependency footprint for :attr:`CompletionResult.support`.  Uses
        the closure's reachability row when one is attached; the BFS
        fallback (``pruning="none"``, dynamic graphs) computes the same
        set, so both pruning modes stamp identical footprints.
        """
        support = self._supports.get(root)
        if support is not None:
            return support
        closure = self.closure
        if closure is not None and root in closure.index:
            row = closure.reach[closure.index[root]]
            nodes = closure.nodes
            support = frozenset(
                nodes[position]
                for position in range(len(nodes))
                if row >> position & 1
            )
        else:
            seen = {root}
            frontier = [root]
            while frontier:
                node = frontier.pop()
                for edge in self.graph.edges_from(node):
                    if edge.target not in seen:
                        seen.add(edge.target)
                        frontier.append(edge.target)
            support = frozenset(seen)
        self._supports[root] = support
        return support

    # ------------------------------------------------------------------
    # The traversal (Algorithm 2)
    # ------------------------------------------------------------------

    def _traverse(
        self,
        root: str,
        root_label: PathLabel,
        root_path: ConcretePath,
        state: "_SearchState",
        target: Target,
        meter: BudgetMeter | None = None,
        tables: TargetTables | None = None,
    ) -> str | None:
        """Iterative rendering of the paper's recursive ``traverse``.

        Each stack frame carries ``(node, label, path, next edge
        index)``; pushing a frame corresponds to a recursive call (line
        13), popping a frame past its last edge to returning past line
        15 (which clears the ``visited`` flag).

        Dispatches to the reference loop (the paper's Algorithm 2
        verbatim) or, when ``tables`` is given, to the closure-guided
        loop with the two extra cut rules.

        Returns ``None`` on exhaustion, or the truncation reason when
        ``meter`` trips — the state's recorded complete paths are then
        the best-so-far anytime answer.
        """
        try:
            if tables is None:
                self._traverse_reference(
                    root, root_label, root_path, state, target, meter
                )
            elif self.kernel == "flat" and not get_audit().enabled:
                # The flat integer kernel — byte-identical to the
                # closure loop below (property-tested).  Audited runs
                # stay interpreted: the audit log instruments the
                # interpreted loop's decision sites.
                get_metrics().counter("kernel.flat_runs").inc()
                run_flat(
                    root,
                    self.closure.index[root],
                    state,
                    self._flat_tables(tables),
                    self.aggregator,
                    self.caution.masks if self.caution is not None else None,
                    self.max_depth,
                    meter,
                )
            else:
                self._traverse_closure(
                    root, root_label, root_path, state, target, meter, tables
                )
        except _BudgetTrip as trip:
            return trip.reason
        except KernelBudgetTrip as trip:
            return trip.reason
        return None

    def _flat_tables(self, tables: TargetTables) -> FlatTables:
        """The flat-kernel view of ``tables``, built once per instance."""
        entry = self._flat.get(id(tables))
        if entry is None or entry[0] is not tables:
            entry = (tables, FlatTables.build(self.closure, tables))
            self._flat[id(tables)] = entry
        return entry[1]

    def _traverse_reference(
        self,
        root: str,
        root_label: PathLabel,
        root_path: ConcretePath,
        state: "_SearchState",
        target: Target,
        meter: BudgetMeter | None,
    ) -> None:
        """The paper's Algorithm 2, line by line (``pruning="none"``).

        This is the A/B reference the closure loop is verified against;
        it stays deliberately close to the published pseudocode."""
        visited: set[str] = state.visited
        aggregator = self.aggregator
        aggregate = aggregator.aggregate
        keeps = aggregator.keeps
        stats = state.stats
        best = state.best
        best_get = best.get
        graph = self.graph
        edges_from = graph.edges_from
        is_completing = target.is_completing_edge
        caution = self.caution
        max_depth = self.max_depth
        complete = state.complete
        # One hoisted flag guards every audit hook: the disabled default
        # costs a boolean test per decision site and the traversal is
        # byte-identical either way (asserted in tests/core/test_audit.py).
        audit = get_audit()
        audit_on = audit.enabled
        audit_record = audit.record

        stack: list[tuple[str, PathLabel, ConcretePath, int]] = []
        stack_append = stack.append

        def enter(node: str, label: PathLabel, path: ConcretePath) -> None:
            # Lines 1-5: mark visited, record any complete paths via the
            # completing edges out of this node, run update(paths).
            visited.add(node)
            stats.recursive_calls += 1
            if audit_on:
                audit_record(
                    "expand",
                    node=node,
                    depth=path.length,
                    edge=path.edges[-1].name if path.edges else None,
                    label=str(label),
                    length=label.semantic_length,
                )
            if meter is not None:
                reason = meter.tripped(
                    stats.recursive_calls, len(complete), len(stack)
                )
                if reason is not None:
                    raise _BudgetTrip(reason)
            for edge in edges_from(node):
                if not is_completing(edge):
                    continue
                if edge.target in visited:
                    continue  # would close a cycle; ignored per semantics
                candidate = label.extend(edge.connector)
                state.best_target = aggregate(
                    [candidate, *state.best_target]
                )
                kept = keeps(candidate, state.best_target)
                if kept:
                    complete.append(path.extend(edge))
                    stats.complete_paths_found += 1
                if audit_on:
                    audit_record(
                        "complete",
                        node=node,
                        depth=path.length,
                        edge=edge.name,
                        path=str(path.extend(edge)),
                        label=str(candidate),
                        length=candidate.semantic_length,
                        kept=kept,
                    )
            stack_append((node, label, path, 0))

        enter(root, root_label, root_path)
        while stack:
            node, label, path, edge_index = stack.pop()
            edges = edges_from(node)
            n_edges = len(edges)
            advanced = False
            while edge_index < n_edges:
                edge = edges[edge_index]
                edge_index += 1
                if is_completing(edge):
                    continue  # handled in enter(); never extended
                child = edge.target
                stats.edges_considered += 1
                if child in visited:
                    stats.pruned_visited += 1
                    if audit_on:
                        audit_record(
                            "cut",
                            rule="visited",
                            node=node,
                            depth=path.length,
                            edge=edge.name,
                            child=child,
                            caution=False,
                        )
                    continue
                if not edges_from(child) and not _can_complete_at(
                    graph, child, target
                ):
                    if audit_on:
                        audit_record(
                            "cut",
                            rule="dead_end",
                            node=node,
                            depth=path.length,
                            edge=edge.name,
                            child=child,
                            caution=False,
                        )
                    continue  # dead end (e.g. primitive class)
                if (
                    max_depth is not None
                    and path.length + 1 >= max_depth
                ):
                    if audit_on:
                        audit_record(
                            "cut",
                            rule="max_depth",
                            node=node,
                            depth=path.length,
                            edge=edge.name,
                            child=child,
                            caution=False,
                        )
                    continue
                child_label = label.extend(edge.connector)
                # Line 9: bound against the best complete labels so far.
                if state.best_target and not keeps(
                    child_label, state.best_target
                ):
                    stats.pruned_target_bound += 1
                    if audit_on:
                        audit_record(
                            "cut",
                            rule="target_bound",
                            node=node,
                            depth=path.length,
                            edge=edge.name,
                            child=child,
                            label=str(child_label),
                            length=child_label.semantic_length,
                            frontier=[str(k) for k in state.best_target],
                            caution=False,
                        )
                    continue
                # Lines 10-11: bound against best[u], rescued by caution.
                child_best = best_get(child, [])
                if child_best and not keeps(child_label, child_best):
                    if caution is not None and caution.intersects(
                        child_label, child_best
                    ):
                        stats.rescued_by_caution += 1
                        if audit_on:
                            audit_record(
                                "rescue",
                                rule="best_bound",
                                node=node,
                                depth=path.length,
                                edge=edge.name,
                                child=child,
                                label=str(child_label),
                            )
                    else:
                        stats.pruned_best_bound += 1
                        if audit_on:
                            audit_record(
                                "cut",
                                rule="best_bound",
                                node=node,
                                depth=path.length,
                                edge=edge.name,
                                child=child,
                                label=str(child_label),
                                length=child_label.semantic_length,
                                frontier=[str(k) for k in child_best],
                                caution=False,
                            )
                        continue
                # Line 12: best[u] := AGG*({l_u} ∪ best[u]).
                best[child] = aggregate(
                    [child_label, *child_best]
                )
                # Line 13: recurse — push the parent frame back with its
                # position, then enter the child.
                stack_append((node, label, path, edge_index))
                enter(child, child_label, path.extend(edge))
                advanced = True
                break
            if not advanced:
                visited.discard(node)  # line 15

    def _traverse_closure(
        self,
        root: str,
        root_label: PathLabel,
        root_path: ConcretePath,
        state: "_SearchState",
        target: Target,
        meter: BudgetMeter | None,
        tables: TargetTables,
    ) -> None:
        """Algorithm 2 with the closure cut rules (``pruning="closure"``).

        Semantically this is :meth:`_traverse_reference` plus two cuts:

        * *reachability pruning* — edges to children from which no
          completing edge is reachable are dropped (pre-filtered into
          ``tables.interior`` at table build; the per-entry counter
          charge keeps the stats comparable);
        * *label-bound pruning* — after the line-12 ``best[u]`` update
          (so the frontier evolves exactly as in the reference), a child
          is entered only if some achievable composed connector admits
          an optimistic complete label that ``best[T]`` keeps, or one
          whose caution set intersects ``best[T]`` (the non-
          distributivity exemption).

        Implementation-wise the loop is specialized: the line-9 test
        and the bound test run off an integer cutoff table that is an
        exact rewrite of :meth:`Aggregator.keeps` against the current
        ``best[T]`` (rebuilt only when the frontier's content changes);
        ``best[u]`` is held as AGG*-reduced ``(length, sort rank,
        connector index)`` integer triples with a cached connector
        bitmask (``best[u]`` is internal to the traversal — the paper's
        semantics depend only on the (connector, length) key set, which
        the triples carry exactly); label extensions are interned in
        per-label rows carried in the stack frame; and recorded paths
        carry their already-computed labels so finalization never
        recomputes them.
        """
        visited: set[str] = state.visited
        aggregator = self.aggregator
        keeps = aggregator.keeps
        merge = aggregator.merge
        e_param = aggregator.e
        beaten_by = aggregator.beaten_by
        stats = state.stats
        best = state.best
        best_get = best.get
        caution = self.caution
        caution_masks = caution.masks if caution is not None else None
        max_depth = self.max_depth
        complete = state.complete
        node_index = self.closure.index
        interior = tables.interior
        completing = tables.completing
        reach_pruned = tables.reach_pruned
        rows = tables.rows
        conns = tables.conns
        coni = _CONI
        last_class = _LAST_CLASS_BY_INDEX
        sort_rank = _SORT_RANK
        concrete_path = ConcretePath
        ext_rows = self._ext_rows
        ext_rows_get = ext_rows.get
        # Guarded audit hooks, as in the reference loop; the closure
        # loop additionally surfaces the table-build reachability drops
        # and the exact bound-vs-cutoff arithmetic of every cut.
        audit = get_audit()
        audit_on = audit.enabled
        audit_record = audit.record
        reach_dropped = tables.reach_dropped
        all_connectors = ALL_CONNECTORS

        def ext_row(label: PathLabel) -> list:
            # The interned extension row of ``label``: row[c] is
            # label.extend(connector c), filled on demand.  Keyed by id —
            # sound because the entry pins the label (no id reuse) and
            # every label reaching the loop is canonical: the shared
            # IDENTITY_LABEL root, or an earlier row fill.
            label_id = id(label)
            entry = ext_rows_get(label_id)
            if entry is None:
                entry = (label, [None] * _N_CONNECTORS)
                ext_rows[label_id] = entry
            return entry[1]

        stack: list[tuple] = []
        stack_append = stack.append
        stack_pop = stack.pop

        # The line-9 / bound-test cutoffs: cutoffs[c] is the largest
        # semantic length at which a label with connector c still passes
        # keeps(label, best[T]) (-1 when c is beaten outright).  Exact
        # by the AGG* membership algebra; rebuilt only when best[T]'s
        # content changes.
        cutoffs = [_NO_CUTOFF] * _N_CONNECTORS
        seen_best_target: list | None = None
        seen_signature: tuple | None = None
        best_target_mask = 0

        def enter(
            node: str, node_i: int, label: PathLabel, path: ConcretePath
        ) -> None:
            # Lines 1-5, driven by the precomputed completing-edge list.
            visited.add(node)
            stats.recursive_calls += 1
            stats.nodes_pruned_reachability += reach_pruned[node_i]
            if audit_on:
                audit_record(
                    "expand",
                    node=node,
                    depth=path.length,
                    edge=path.edges[-1].name if path.edges else None,
                    label=str(label),
                    length=label.semantic_length,
                )
                # The edges reachability pruning removed at table build;
                # surfaced per entry, mirroring the stats charge above.
                for dropped_child, _, dropped_edge in reach_dropped[node_i]:
                    audit_record(
                        "cut",
                        rule="reachability",
                        node=node,
                        depth=path.length,
                        edge=dropped_edge.name,
                        child=dropped_child,
                        caution=False,
                    )
            if meter is not None:
                reason = meter.tripped(
                    stats.recursive_calls, len(complete), len(stack)
                )
                if reason is not None:
                    raise _BudgetTrip(reason)
            exts = ext_row(label)
            for edge, edge_target, connector_i in completing[node_i]:
                if edge_target in visited:
                    continue  # would close a cycle; ignored per semantics
                candidate = exts[connector_i]
                if candidate is None:
                    candidate = exts[connector_i] = label.extend(edge.connector)
                state.best_target = merge(candidate, state.best_target)
                kept = keeps(candidate, state.best_target)
                if kept:
                    # Direct construction: the frame invariant guarantees
                    # the edge chains, so extend()'s validation is
                    # redundant here.
                    complete_path = concrete_path(
                        path.root, path.edges + (edge,)
                    )
                    object.__setattr__(complete_path, "_label", candidate)
                    complete.append(complete_path)
                    stats.complete_paths_found += 1
                if audit_on:
                    audited = (
                        complete[-1]
                        if kept
                        else concrete_path(path.root, path.edges + (edge,))
                    )
                    audit_record(
                        "complete",
                        node=node,
                        depth=path.length,
                        edge=edge.name,
                        path=str(audited),
                        label=str(candidate),
                        length=candidate.semantic_length,
                        kept=kept,
                    )
            stack_append((node, node_i, label, exts, path, 0))

        enter(root, node_index[root], root_label, root_path)
        while stack:
            node, node_i, label, exts, path, edge_index = stack_pop()
            edges = interior[node_i]
            n_edges = len(edges)
            advanced = False
            while edge_index < n_edges:
                child, child_i, connector_i, edge = edges[edge_index]
                edge_index += 1
                stats.edges_considered += 1
                if child in visited:
                    stats.pruned_visited += 1
                    if audit_on:
                        audit_record(
                            "cut",
                            rule="visited",
                            node=node,
                            depth=path.length,
                            edge=edge.name,
                            child=child,
                            caution=False,
                        )
                    continue
                if (
                    max_depth is not None
                    and path.length + 1 >= max_depth
                ):
                    if audit_on:
                        audit_record(
                            "cut",
                            rule="max_depth",
                            node=node,
                            depth=path.length,
                            edge=edge.name,
                            child=child,
                            caution=False,
                        )
                    continue
                child_label = exts[connector_i]
                if child_label is None:
                    child_label = exts[connector_i] = label.extend(
                        edge.connector
                    )
                child_connector_i = child_label.connector.index
                child_length = child_label.semantic_length
                best_target = state.best_target
                if best_target:
                    if best_target is not seen_best_target:
                        seen_best_target = best_target
                        signature = tuple(
                            (known.connector.index << 16)
                            | known.semantic_length
                            for known in best_target
                        )
                        if signature != seen_signature:
                            seen_signature = signature
                            best_target_mask = _rebuild_cutoffs(
                                best_target, cutoffs, beaten_by, e_param
                            )
                    # Line 9, via the cutoff table.
                    if child_length > cutoffs[child_connector_i]:
                        stats.pruned_target_bound += 1
                        if audit_on:
                            audit_record(
                                "cut",
                                rule="target_bound",
                                node=node,
                                depth=path.length,
                                edge=edge.name,
                                child=child,
                                label=str(child_label),
                                length=child_length,
                                cutoff=cutoffs[child_connector_i],
                                caution=False,
                            )
                        continue
                # Lines 10-11: bound against best[u], rescued by caution.
                # best[u] is (connector bitmask, AGG*-reduced triples).
                child_bit = 1 << child_connector_i
                child_entry = best_get(child)
                if child_entry is not None:
                    stored_mask, triples = child_entry
                    candidate_triple = (
                        child_length,
                        sort_rank[child_connector_i],
                        child_connector_i,
                    )
                    # Fast path: the candidate's key is already in the
                    # AGG* output, so it trivially passes the membership
                    # test and the line-12 update is a no-op.
                    if candidate_triple not in triples:
                        present = stored_mask | child_bit
                        if present & beaten_by[child_connector_i]:
                            kept = False
                        else:
                            lengths = {child_length}
                            for known_length, _, known_ci in triples:
                                if not (present & beaten_by[known_ci]):
                                    lengths.add(known_length)
                            kept = (
                                len(lengths) <= e_param
                                or child_length
                                <= sorted(lengths)[e_param - 1]
                            )
                        if not kept:
                            if (
                                caution_masks is not None
                                and stored_mask
                                & caution_masks[child_connector_i]
                            ):
                                stats.rescued_by_caution += 1
                                if audit_on:
                                    audit_record(
                                        "rescue",
                                        rule="best_bound",
                                        node=node,
                                        depth=path.length,
                                        edge=edge.name,
                                        child=child,
                                        label=str(child_label),
                                    )
                            else:
                                stats.pruned_best_bound += 1
                                if audit_on:
                                    audit_record(
                                        "cut",
                                        rule="best_bound",
                                        node=node,
                                        depth=path.length,
                                        edge=edge.name,
                                        child=child,
                                        label=str(child_label),
                                        length=child_length,
                                        frontier=[
                                            "[%s,%d]"
                                            % (
                                                all_connectors[ci].symbol,
                                                known_length,
                                            )
                                            for known_length, _, ci in triples
                                        ],
                                        caution=False,
                                    )
                                continue
                        # Line 12: best[u] := AGG*({l_u} ∪ best[u]).  The
                        # candidate passes the connector filter too: a
                        # caution-rescued (beaten) candidate reaches here
                        # but does not survive into the stored frontier.
                        survivors = []
                        if not (present & beaten_by[child_connector_i]):
                            survivors.append(candidate_triple)
                        for triple in triples:
                            if not (present & beaten_by[triple[2]]):
                                survivors.append(triple)
                        if len(survivors) > e_param:
                            s_lengths = sorted(
                                {triple[0] for triple in survivors}
                            )
                            if len(s_lengths) > e_param:
                                cut = s_lengths[e_param - 1]
                                survivors = [
                                    triple
                                    for triple in survivors
                                    if triple[0] <= cut
                                ]
                        survivors.sort()
                        new_mask = 0
                        for triple in survivors:
                            new_mask |= 1 << triple[2]
                        best[child] = (new_mask, survivors)
                else:
                    best[child] = (
                        child_bit,
                        [
                            (
                                child_length,
                                sort_rank[child_connector_i],
                                child_connector_i,
                            )
                        ],
                    )
                # Label-bound pruning (after line 12, so best[] evolves
                # identically to the reference loop).
                if best_target:
                    row = rows[child_i]
                    base = (
                        last_class[child_label.state.last.index]
                        * _N_CONNECTORS
                    )
                    prefix_length = child_label.semantic_length
                    composed_row = coni[child_connector_i]
                    survives = False
                    for suffix_ci in conns[child_i]:
                        composed_i = composed_row[suffix_ci]
                        if (
                            caution_masks is not None
                            and best_target_mask & caution_masks[composed_i]
                        ):
                            survives = True  # caution exemption
                            if audit_on:
                                audit_record(
                                    "rescue",
                                    rule="label_bound",
                                    node=node,
                                    depth=path.length,
                                    edge=edge.name,
                                    child=child,
                                    label=str(child_label),
                                )
                            break
                        if (
                            prefix_length + row[base + suffix_ci]
                            <= cutoffs[composed_i]
                        ):
                            survives = True
                            break
                    if not survives:
                        stats.nodes_pruned_bound += 1
                        if audit_on:
                            audit_record(
                                "cut",
                                rule="label_bound",
                                node=node,
                                depth=path.length,
                                edge=edge.name,
                                child=child,
                                label=str(child_label),
                                length=child_length,
                                bounds=[
                                    {
                                        "connector": all_connectors[
                                            composed_row[suffix_ci]
                                        ].symbol,
                                        "bound": prefix_length
                                        + row[base + suffix_ci],
                                        "cutoff": cutoffs[
                                            composed_row[suffix_ci]
                                        ],
                                    }
                                    for suffix_ci in conns[child_i]
                                ],
                                caution=False,
                            )
                        continue
                # Line 13: recurse — push the parent frame back with its
                # position, then enter the child.
                stack_append((node, node_i, label, exts, path, edge_index))
                child_path = concrete_path(path.root, path.edges + (edge,))
                object.__setattr__(child_path, "_label", child_label)
                enter(child, child_i, child_label, child_path)
                advanced = True
                break
            if not advanced:
                visited.discard(node)  # line 15

    # ------------------------------------------------------------------
    # Finalization: update(paths) semantics applied to the full set
    # ------------------------------------------------------------------

    def _finalize(self, state: "_SearchState") -> list[ConcretePath]:
        """Filter recorded complete paths to the AGG*-optimal set and
        apply the Inheritance Semantics Criterion."""
        complete = state.complete
        audit = get_audit()
        if not complete:
            if audit.enabled:
                audit.record(
                    "agg_select",
                    candidates=0,
                    optimal_labels=0,
                    survivors=0,
                    preempted=0,
                )
            return []
        tracer = get_tracer()
        with tracer.span("agg_select", candidates=len(complete)) as span:
            optimal_labels = {
                label.key
                for label in self.aggregator.aggregate(
                    [path.label() for path in complete]
                )
            }
            survivors = [
                path for path in complete if path.label().key in optimal_labels
            ]
            # De-duplicate identical edge sequences (a path can be recorded
            # twice when caution sets force re-exploration).
            unique: dict[tuple, ConcretePath] = {}
            for path in survivors:
                unique.setdefault((path.root, path.edges), path)
            survivors = list(unique.values())
            span.set(optimal_labels=len(optimal_labels), survivors=len(survivors))
        if self.apply_inheritance_criterion:
            with tracer.span("preemption", candidates=len(survivors)) as span:
                survivors, removed = apply_preemption(survivors)
                state.stats.preempted_paths = removed
                span.set(removed=removed)
        with tracer.span("rank", paths=len(survivors)):
            survivors.sort(
                key=lambda p: (
                    p.label().connector.sort_rank,
                    p.semantic_length,
                    p.length,
                    str(p),
                )
            )
        if audit.enabled:
            audit.record(
                "agg_select",
                candidates=len(complete),
                optimal_labels=len(optimal_labels),
                survivors=len(survivors),
                preempted=state.stats.preempted_paths,
            )
        return survivors

    def __repr__(self) -> str:
        return (
            f"CompletionSearch(graph={self.graph!r}, "
            f"order={self.order.name!r}, e={self.aggregator.e}, "
            f"caution={'on' if self.caution else 'off'})"
        )


def _can_complete_at(
    graph: SchemaGraph, node: str, target: Target
) -> bool:
    """True if some completing edge departs from ``node``."""
    return any(
        target.is_completing_edge(edge) for edge in graph.edges_from(node)
    )


@dataclasses.dataclass(slots=True)
class _SearchState:
    """Mutable globals of the traversal (the paper's best[], paths)."""

    best_target: list[PathLabel]
    complete: list[ConcretePath]
    stats: TraversalStats
    # best[u]: PathLabel lists in the reference loop; (connector mask,
    # integer triples) pairs in the closure loop.  Internal either way.
    best: dict[str, object] = dataclasses.field(default_factory=dict)
    visited: set[str] = dataclasses.field(default_factory=set)


def complete_paths(
    graph: SchemaGraph,
    root: str,
    target: Target,
    order: PartialOrder | None = None,
    e: int = 1,
    use_caution_sets: bool = True,
    apply_inheritance_criterion: bool = True,
    max_depth: int | None = None,
    budget: Budget | None = None,
    pruning: str | None = None,
    kernel: str | None = None,
) -> CompletionResult:
    """One-shot convenience wrapper around :class:`CompletionSearch`."""
    search = CompletionSearch(
        graph,
        order=order,
        e=e,
        use_caution_sets=use_caution_sets,
        apply_inheritance_criterion=apply_inheritance_criterion,
        max_depth=max_depth,
        pruning=pruning,
        kernel=kernel,
    )
    return search.run(root, target, budget=budget)
