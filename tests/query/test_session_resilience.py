"""Session resilience: error-catching rounds and ``:budget`` commands."""

import pytest

from repro.core.compiled import CompiledSchema
from repro.model.instances import Database
from repro.query.session import CompletionSession
from repro.resilience.budget import Budget


@pytest.fixture()
def db(university):
    db = Database(university)
    bob = db.create("ta")
    db.set_attribute(bob, "name", "bob")
    return db


def _session(db, **kwargs):
    """A session over a private artifact — the registry-shared one may
    already hold warm results, which legitimately bypass any budget."""
    return CompletionSession(
        db, compiled=CompiledSchema(db.schema), **kwargs
    )


class TestAskCatchesErrors:
    def test_syntax_error_becomes_message(self, db):
        session = CompletionSession(db)
        interaction = session.ask("ta ~~ ~")
        assert interaction.message.startswith("error:")
        assert interaction.candidates == ()
        assert interaction.results == ()
        assert session.history == [interaction]

    def test_no_completion_becomes_message(self, db):
        session = CompletionSession(db)
        # A general (multi-gap) expression with no consistent completion
        # raises NoCompletionError inside the round.
        interaction = session.ask("ta ~ bogus_one ~ bogus_two")
        assert interaction.message.startswith("error:")

    def test_unknown_class_becomes_message(self, db):
        session = CompletionSession(db)
        interaction = session.ask("martian ~ name")
        assert interaction.message.startswith("error:")

    def test_loop_continues_after_error(self, db):
        session = CompletionSession(db)
        session.ask("ta ~~ ~")
        good = session.ask("ta ~ name")
        assert good.candidates
        assert not good.message.startswith("error:")
        assert len(session.history) == 2

    def test_budget_trip_reports_best_so_far(self, db):
        session = _session(db, budget=Budget(max_nodes=1))  # raise-on-trip
        interaction = session.ask("ta ~ name")
        assert interaction.message.startswith("error:")
        assert "budget exceeded" in interaction.message

    def test_budget_partial_ok_round_is_flagged_not_failed(self, db):
        session = _session(db, budget=Budget(max_nodes=1, partial_ok=True))
        interaction = session.ask("ta ~ name")
        assert not interaction.message.startswith("error:")
        assert "truncated by budget" in interaction.message


class TestBudgetCommand:
    def test_show_when_off(self, db):
        session = CompletionSession(db)
        assert "budget off" in session.ask(":budget").message

    def test_set_deadline_and_nodes(self, db):
        session = CompletionSession(db)
        message = session.ask(":budget deadline 250").message
        assert "deadline=250ms" in message
        message = session.ask(":budget nodes 500").message
        assert "nodes<=500" in message
        assert session.budget.max_seconds == pytest.approx(0.25)
        assert session.budget.max_nodes == 500

    def test_set_paths_depth_and_partial(self, db):
        session = CompletionSession(db)
        session.ask(":budget paths 3")
        session.ask(":budget depth 9")
        message = session.ask(":budget partial on").message
        assert "paths<=3" in message
        assert "depth<=9" in message
        assert "partial-ok" in message

    def test_off_clears(self, db):
        session = CompletionSession(db)
        session.ask(":budget nodes 10")
        assert session.ask(":budget off").message == "budget off"
        assert session.budget is None

    def test_bad_arguments_report_usage(self, db):
        session = CompletionSession(db)
        assert "usage:" in session.ask(":budget bogus 1").message
        assert "not a number" in session.ask(":budget nodes abc").message
        assert "usage:" in session.ask(":budget partial maybe").message

    def test_invalid_value_reports_error(self, db):
        session = CompletionSession(db)
        assert "error:" in session.ask(":budget nodes -5").message

    def test_budget_governs_subsequent_rounds(self, db):
        session = _session(db)
        session.ask(":budget nodes 1")
        session.ask(":budget partial on")
        interaction = session.ask("ta ~ name")
        assert "truncated by budget" in interaction.message

    def test_unknown_command_mentions_budget(self, db):
        session = CompletionSession(db)
        assert ":budget" in session.ask(":bogus").message
