"""Structural analysis of schemas.

Reports the shape facts that drive completion behaviour — kind mix, Isa
depth, part-whole depth, hub classes, connectivity — using
:mod:`networkx` for the graph-theoretic measures.  The experiment
reports use these to characterize the synthetic CUPID schema against
the paper's description, and schema designers can use them to spot the
auxiliary hub classes worth excluding (Section 5.2).
"""

from __future__ import annotations

import dataclasses
from collections import Counter

import networkx as nx

from repro.model.graph import SchemaGraph
from repro.model.inheritance import ancestors
from repro.model.kinds import RelationshipKind
from repro.model.schema import Schema

__all__ = ["SchemaProfile", "profile_schema", "suggest_hub_exclusions"]


@dataclasses.dataclass(frozen=True)
class SchemaProfile:
    """Aggregated structural facts about one schema."""

    name: str
    user_classes: int
    relationships: int
    kind_histogram: tuple[tuple[str, int], ...]
    max_isa_depth: int
    max_part_depth: int
    weakly_connected_components: int
    diameter_of_largest_component: int
    hub_classes: tuple[tuple[str, int], ...]  # (class, degree), descending

    def render(self) -> str:
        """Multi-line human-readable report."""
        kinds = ", ".join(f"{kind}: {count}" for kind, count in self.kind_histogram)
        hubs = ", ".join(f"{name} ({degree})" for name, degree in self.hub_classes)
        return "\n".join(
            [
                f"schema {self.name}",
                f"  user classes:        {self.user_classes}",
                f"  relationships:       {self.relationships}",
                f"  kind mix:            {kinds}",
                f"  max Isa depth:       {self.max_isa_depth}",
                f"  max part depth:      {self.max_part_depth}",
                f"  components:          {self.weakly_connected_components}",
                f"  diameter (largest):  {self.diameter_of_largest_component}",
                f"  top hubs:            {hubs}",
            ]
        )


def _max_chain_depth(
    schema: Schema, kind: RelationshipKind
) -> int:
    """Longest simple chain of the given kind (DAG assumed for Isa; for
    part-whole a visited set guards against cycles)."""
    adjacency: dict[str, list[str]] = {}
    for rel in schema.relationships():
        if rel.kind is kind:
            adjacency.setdefault(rel.source, []).append(rel.target)

    memo: dict[str, int] = {}
    active: set[str] = set()

    def depth(node: str) -> int:
        if node in memo:
            return memo[node]
        if node in active:
            return 0  # cycle guard (possible for part-whole)
        active.add(node)
        best = 0
        for child in adjacency.get(node, ()):
            best = max(best, 1 + depth(child))
        active.discard(node)
        memo[node] = best
        return best

    return max((depth(node) for node in adjacency), default=0)


def profile_schema(schema: Schema, hub_count: int = 5) -> SchemaProfile:
    """Compute the structural profile of a schema."""
    kinds = Counter(rel.kind.symbol for rel in schema.relationships())
    graph = SchemaGraph(schema)
    exported = graph.to_networkx()

    undirected = exported.to_undirected()
    components = list(nx.connected_components(undirected))
    if components:
        largest = max(components, key=len)
        subgraph = undirected.subgraph(largest)
        # diameter over the simple-graph view (multi-edges collapse)
        diameter = nx.diameter(nx.Graph(subgraph)) if len(largest) > 1 else 0
    else:  # pragma: no cover - schemas always have the primitives
        diameter = 0

    degrees = Counter()
    for rel in schema.relationships():
        degrees[rel.source] += 1
        if not schema.get_class(rel.target).primitive:
            degrees[rel.target] += 1
    hubs = tuple(degrees.most_common(hub_count))

    return SchemaProfile(
        name=schema.name,
        user_classes=schema.user_class_count,
        relationships=schema.relationship_count,
        kind_histogram=tuple(sorted(kinds.items())),
        max_isa_depth=_max_chain_depth(schema, RelationshipKind.ISA),
        max_part_depth=_max_chain_depth(schema, RelationshipKind.HAS_PART),
        weakly_connected_components=len(components),
        diameter_of_largest_component=diameter,
        hub_classes=hubs,
    )


def suggest_hub_exclusions(
    schema: Schema,
    degree_threshold: int = 8,
    max_outgoing_kinds: int = 1,
) -> list[str]:
    """Heuristically propose auxiliary classes to exclude (Section 5.2).

    A candidate hub is a class with unusually high degree whose own
    outgoing relationships are of few kinds (pure connector classes:
    lots of associations, no structure of their own) and which declares
    no attributes of substance beyond bookkeeping.  The suggestion is a
    *starting point* for a designer, mirroring how the paper's schema
    designer identified "auxiliary classes connected to a plethora of
    other classes but without much inherent semantic content".
    """
    suggestions: list[str] = []
    for cls in schema.classes(include_primitives=False):
        outgoing = schema.relationships_from(cls.name)
        incoming = schema.relationships_into(cls.name)
        degree = len(outgoing) + len(incoming)
        if degree < degree_threshold:
            continue
        non_attribute = [
            rel
            for rel in outgoing
            if not schema.get_class(rel.target).primitive
        ]
        kinds = {rel.kind for rel in non_attribute}
        # pure association hubs (no Isa/part structure of their own)
        if len(kinds) <= max_outgoing_kinds and kinds <= {
            RelationshipKind.IS_ASSOCIATED_WITH
        }:
            suggestions.append(cls.name)
    return sorted(suggestions)


def isa_depth_of(schema: Schema, class_name: str) -> int:
    """Number of (transitive) ancestors — the specificity measure used
    by the focus ranker."""
    return len(ancestors(schema, class_name))
