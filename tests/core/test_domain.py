"""Tests for domain knowledge (Section 5.2)."""

import pytest

from repro.core.domain import DomainKnowledge
from repro.core.engine import Disambiguator
from repro.errors import EvaluationError
from repro.model.graph import SchemaGraph


class TestDeclaration:
    def test_none_is_empty(self):
        assert DomainKnowledge.none().is_empty

    def test_excluding_constructor(self):
        knowledge = DomainKnowledge.excluding("a", "b")
        assert knowledge.excluded_classes == {"a", "b"}
        assert not knowledge.is_empty

    def test_merge(self):
        first = DomainKnowledge.excluding("a")
        second = DomainKnowledge(
            excluded_relationships=frozenset({("x", "y")}),
            class_penalties=(("a", 2),),
        )
        merged = first.merged_with(second)
        assert merged.excluded_classes == {"a"}
        assert ("x", "y") in merged.excluded_relationships
        assert merged.penalties() == {"a": 2}

    def test_merge_takes_max_penalty(self):
        first = DomainKnowledge(class_penalties=(("a", 1),))
        second = DomainKnowledge(class_penalties=(("a", 3),))
        assert first.merged_with(second).penalties() == {"a": 3}


class TestValidation:
    def test_valid_against_schema(self, university):
        knowledge = DomainKnowledge.excluding("course")
        assert knowledge.validate_against(university) == []

    def test_unknown_class_reported(self, university):
        knowledge = DomainKnowledge.excluding("ghost")
        problems = knowledge.validate_against(university)
        assert problems and "ghost" in problems[0]

    def test_unknown_relationship_reported(self, university):
        knowledge = DomainKnowledge(
            excluded_relationships=frozenset({("student", "ghost")})
        )
        assert knowledge.validate_against(university)

    def test_engine_rejects_mismatched_knowledge(self, university):
        with pytest.raises(EvaluationError):
            Disambiguator(
                university, domain_knowledge=DomainKnowledge.excluding("ghost")
            )


class TestRestriction:
    def test_restrict_removes_classes(self, university):
        graph = DomainKnowledge.excluding("course").restrict(
            SchemaGraph(university)
        )
        assert "course" not in graph.nodes()

    def test_empty_knowledge_returns_same_graph(self, university):
        graph = SchemaGraph(university)
        assert DomainKnowledge.none().restrict(graph) is graph

    def test_exclusion_changes_completions(self, university):
        baseline = Disambiguator(university).complete("ta ~ name")
        restricted = Disambiguator(
            university,
            domain_knowledge=DomainKnowledge.excluding("person"),
        ).complete("ta ~ name")
        # without person, the name must come from course or department
        assert len(baseline.paths) == 2
        assert set(restricted.expressions).isdisjoint(
            set(baseline.expressions)
        )

    def test_exclusion_only_removes_answers(self, university):
        """The paper: this form of knowledge removes path expressions,
        never adds them — so recall is unaffected when intents avoid
        excluded classes."""
        baseline = Disambiguator(university, e=3).complete("department ~ ssn")
        restricted = Disambiguator(
            university,
            e=3,
            domain_knowledge=DomainKnowledge.excluding("course"),
        ).complete("department ~ ssn")
        assert set(restricted.expressions) <= set(baseline.expressions)
