"""Path labels and the ``CON`` function (paper Sections 3.2-3.3).

A path label pairs the connector describing the end-to-end relationship
of a path with the path's semantic length.  Per the paper's footnote 3,
the label also carries the connectors of the path's first and last
(collapsed) edges, which the semantic-length computation needs; they
affect nothing else.

``CON`` composes labels: the connector part via ``CON_c`` (Table 1), the
semantic length via :class:`~repro.algebra.semantic_length.SemanticLengthState`.
The identity element Theta is the label of the empty path, ``[@>, 0]``.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable

from repro.algebra.con_table import con_c, con_c_sequence
from repro.algebra.connectors import Connector
from repro.algebra.semantic_length import SemanticLengthState, semantic_length_of

__all__ = ["PathLabel", "IDENTITY_LABEL", "con"]


@dataclasses.dataclass(frozen=True, slots=True)
class PathLabel:
    """The label ``[connector, semantic length]`` of a path.

    Instances are immutable and hashable.  Equality includes the boundary
    state (so labels compose correctly); the AGG comparisons only ever
    look at :attr:`connector` and :attr:`semantic_length` (which is
    materialized as a plain field because the traversal reads it on its
    innermost loop).
    """

    connector: Connector
    state: SemanticLengthState
    semantic_length: int = dataclasses.field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "semantic_length", self.state.length)

    @classmethod
    def identity(cls) -> "PathLabel":
        """Theta, the label of the empty path: ``[@>, 0]``."""
        return cls(Connector.ISA, SemanticLengthState.empty())

    @classmethod
    def for_edge(cls, connector: Connector) -> "PathLabel":
        """Label of a single edge with the given primary connector."""
        return cls(connector, SemanticLengthState.for_edge(connector))

    @classmethod
    def of_path(cls, connectors: Iterable[Connector]) -> "PathLabel":
        """Label of a whole path given its edge connector sequence."""
        connectors = list(connectors)
        return cls(
            con_c_sequence(connectors), SemanticLengthState.of(connectors)
        )

    @property
    def is_identity(self) -> bool:
        """True for Theta, the empty-path label."""
        return self.connector is Connector.ISA and self.state.is_empty

    def extend(self, edge_connector: Connector) -> "PathLabel":
        """CON with a single following edge (the algorithm's inner step)."""
        return PathLabel(
            con_c(self.connector, edge_connector),
            self.state.extend(edge_connector),
        )

    def join(self, other: "PathLabel") -> "PathLabel":
        """General CON of two path labels (associative; property 1)."""
        return PathLabel(
            con_c(self.connector, other.connector),
            self.state.join(other.state),
        )

    @property
    def key(self) -> tuple[Connector, int]:
        """The ``(connector, semantic length)`` pair AGG compares on."""
        return (self.connector, self.semantic_length)

    def __str__(self) -> str:
        return f"[{self.connector.symbol},{self.semantic_length}]"


#: Theta — identity of CON, annihilator of AGG (on realizable labels).
IDENTITY_LABEL = PathLabel.identity()


def con(first: PathLabel, second: PathLabel) -> PathLabel:
    """Function-style alias for :meth:`PathLabel.join` (paper's ``CON``)."""
    return first.join(second)


def label_of_connector_sequence(connectors: Iterable[Connector]) -> PathLabel:
    """Back-compat alias for :meth:`PathLabel.of_path` used in tests."""
    return PathLabel.of_path(connectors)


def check_against_closed_form(connectors: list[Connector]) -> bool:
    """True if the incremental state matches the closed-form length.

    Used by the property-based tests: the incremental seam arithmetic of
    :class:`SemanticLengthState` must agree with
    :func:`~repro.algebra.semantic_length.semantic_length_of` on every
    sequence.
    """
    return (
        PathLabel.of_path(connectors).semantic_length
        == semantic_length_of(connectors)
    )
