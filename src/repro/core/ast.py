"""Path-expression AST (paper Section 2.2).

A path expression starts at a root class and traverses relationships;
each traversal is a :class:`Step` pairing a connector with a
relationship name.  The extra connector ``~`` (a :class:`Step` with
``connector is None``) stands for an arbitrary path and makes the
expression *incomplete*.

:class:`ConcretePath` is the complement: an actual sequence of schema
edges rooted at a class — what the completion algorithm produces and the
evaluator consumes.  A concrete path renders back to a complete
:class:`PathExpression`.
"""

from __future__ import annotations

import dataclasses

from repro.algebra.connectors import Connector
from repro.algebra.labels import PathLabel
from repro.errors import PathExpressionError
from repro.model.graph import SchemaEdge

__all__ = ["Step", "PathExpression", "ConcretePath", "TILDE"]

#: The symbol of the incompleteness connector.
TILDE = "~"


@dataclasses.dataclass(frozen=True)
class Step:
    """One traversal step: a connector plus a relationship name.

    ``connector is None`` encodes the ``~`` connector (an arbitrary
    path whose last relationship is ``name``).
    """

    connector: Connector | None
    name: str

    @classmethod
    def tilde(cls, name: str) -> "Step":
        """An incomplete step ``~ name``."""
        return cls(None, name)

    @property
    def is_tilde(self) -> bool:
        """True for the ``~`` connector."""
        return self.connector is None

    @property
    def symbol(self) -> str:
        """The connector symbol as written in expressions."""
        return TILDE if self.connector is None else self.connector.symbol

    def __post_init__(self) -> None:
        if self.connector is not None and not self.connector.is_primary:
            raise PathExpressionError(
                f"step connectors must be primary, got {self.connector.symbol}"
            )
        if not self.name:
            raise PathExpressionError("step has no relationship name")

    def __str__(self) -> str:
        return f"{self.symbol}{self.name}"


@dataclasses.dataclass(frozen=True)
class PathExpression:
    """A (possibly incomplete) path expression: root class + steps."""

    root: str
    steps: tuple[Step, ...]

    def __post_init__(self) -> None:
        if not self.root:
            raise PathExpressionError("path expression has no root class")

    @property
    def is_complete(self) -> bool:
        """True when the expression contains no ``~`` step."""
        return all(not step.is_tilde for step in self.steps)

    @property
    def is_incomplete(self) -> bool:
        return not self.is_complete

    @property
    def tilde_count(self) -> int:
        """Number of ``~`` steps."""
        return sum(1 for step in self.steps if step.is_tilde)

    @property
    def is_simple_incomplete(self) -> bool:
        """True for the paper's focus form ``s ~ N``: exactly one step,
        and it is a tilde."""
        return len(self.steps) == 1 and self.steps[0].is_tilde

    @property
    def last_name(self) -> str:
        """The final relationship name (raises on empty expressions)."""
        if not self.steps:
            raise PathExpressionError("expression has no steps")
        return self.steps[-1].name

    def connectors(self) -> list[Connector]:
        """Connector sequence; raises if the expression is incomplete."""
        if self.is_incomplete:
            raise PathExpressionError(
                "incomplete expression has no definite connector sequence"
            )
        return [step.connector for step in self.steps]  # type: ignore[misc]

    def label(self) -> PathLabel:
        """The path label of a complete expression."""
        return PathLabel.of_path(self.connectors())

    def __str__(self) -> str:
        return self.root + "".join(str(step) for step in self.steps)


@dataclasses.dataclass(frozen=True)
class ConcretePath:
    """A concrete path in a schema graph: root class + edge sequence.

    Unlike :class:`PathExpression` (pure syntax), a concrete path knows
    the actual schema edges, so its label, class sequence, and acyclicity
    are all well defined.
    """

    root: str
    edges: tuple[SchemaEdge, ...]

    @classmethod
    def start(cls, root: str) -> "ConcretePath":
        """The empty path anchored at ``root``."""
        return cls(root, ())

    def extend(self, edge: SchemaEdge) -> "ConcretePath":
        """Append an edge; it must depart from the current end class."""
        if edge.source != self.target_class:
            raise PathExpressionError(
                f"edge {edge} does not start at {self.target_class!r}"
            )
        return ConcretePath(self.root, self.edges + (edge,))

    @property
    def target_class(self) -> str:
        """The class at the end of the path."""
        return self.edges[-1].target if self.edges else self.root

    @property
    def length(self) -> int:
        """Actual (edge-count) length, distinct from semantic length."""
        return len(self.edges)

    def classes(self) -> list[str]:
        """The visited class sequence, root first."""
        return [self.root] + [edge.target for edge in self.edges]

    @property
    def is_acyclic(self) -> bool:
        """True when no class is visited twice."""
        visited = self.classes()
        return len(visited) == len(set(visited))

    def connectors(self) -> list[Connector]:
        """The primary connector sequence of the edges."""
        return [edge.connector for edge in self.edges]

    def label(self) -> PathLabel:
        """The path label (CON over the edge labels).

        Cached on first computation: paths are immutable, and the
        closure-guided traversal seeds this cache with the label it
        already carries, so finalization/ranking never refolds CON over
        the edge sequence.  The cache lives in the instance ``__dict__``
        (not a field), so equality, hashing, and repr are unaffected.
        """
        cached = self.__dict__.get("_label")
        if cached is None:
            cached = PathLabel.of_path(self.connectors())
            object.__setattr__(self, "_label", cached)
        return cached

    @property
    def semantic_length(self) -> int:
        """Semantic length of the path (restructured length)."""
        return self.label().semantic_length

    def to_expression(self) -> PathExpression:
        """Render as a complete :class:`PathExpression`."""
        return PathExpression(
            self.root,
            tuple(Step(edge.connector, edge.name) for edge in self.edges),
        )

    def startswith(self, other: "ConcretePath") -> bool:
        """True if ``other`` is a (non-strict) prefix of this path."""
        if other.root != self.root or other.length > self.length:
            return False
        return self.edges[: other.length] == other.edges

    def __str__(self) -> str:
        return str(self.to_expression())
