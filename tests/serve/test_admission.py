"""Admission control and load shedding under deterministic overload.

The engine is gated behind an event, so "slow backend" is exact: the
tier fills to its admission bound and stays there until the test says
otherwise — no sleeps, no timing guesses.
"""

import threading

from repro.serve import ServeConfig

from tests.serve.conftest import gate_tenant, make_tier, raw_client


def fire_burst(client, count: int, expression: str = "ta ~ name"):
    """Issue ``count`` concurrent completions; return their responses."""
    responses = [None] * count
    errors = [None] * count

    def worker(index: int) -> None:
        try:
            responses[index] = client.complete(expression)
        except Exception as error:  # noqa: BLE001 - recorded for asserts
            errors[index] = error

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(thread.is_alive() for thread in threads), "request hung"
    assert errors == [None] * count, errors
    return responses


class TestLoadShedding:
    def test_burst_of_4x_capacity_sheds_never_hangs(self, university):
        """The acceptance contract: a burst of 4x the admission bound
        gets exactly queue_limit successes; everything else is shed
        with 429 + Retry-After.  No hangs, no 500s."""
        config = ServeConfig(queue_limit=2, workers=1)
        tier = make_tier({"university": university}, config=config)
        gate = gate_tenant(tier.tenants.get("university"))
        try:
            client = raw_client(tier)
            burst = config.queue_limit * 4

            collected = []
            lock = threading.Lock()

            def worker() -> None:
                response = client.complete("ta ~ name")
                with lock:
                    collected.append(response)

            threads = [
                threading.Thread(target=worker) for _ in range(burst)
            ]
            for thread in threads:
                thread.start()
            # Wait until the admission bound is actually reached, then
            # wait until every over-capacity request has been answered
            # (only then is shedding complete), and release the gate.
            assert gate.entered.acquire(timeout=10.0)
            deadline = threading.Event()
            for _ in range(200):
                with lock:
                    if len(collected) >= burst - config.queue_limit:
                        break
                deadline.wait(0.05)
            gate.release()
            for thread in threads:
                thread.join(timeout=30.0)
            assert not any(t.is_alive() for t in threads), "request hung"

            statuses = sorted(r.status for r in collected)
            assert len(collected) == burst
            assert 500 not in statuses
            shed = [r for r in collected if r.status == 429]
            served = [r for r in collected if r.status in (200, 206)]
            assert len(served) == config.queue_limit
            assert len(shed) == burst - config.queue_limit
            for response in shed:
                assert response.retry_after is not None
                assert response.json["queue_limit"] == config.queue_limit
        finally:
            gate.release()
            tier.stop(drain=False)

    def test_shed_counter_and_pending_gauge_are_exported(self, university):
        config = ServeConfig(queue_limit=1, workers=1)
        tier = make_tier({"university": university}, config=config)
        gate = gate_tenant(tier.tenants.get("university"))
        try:
            client = raw_client(tier)
            blocker = threading.Thread(
                target=lambda: client.complete("ta ~ name")
            )
            blocker.start()
            assert gate.entered.acquire(timeout=10.0)
            shed = client.complete("ta ~ name")
            assert shed.status == 429
            text = client.metrics_text()
            assert "repro_serve_shed_total 1" in text
            gate.release()
            blocker.join(timeout=30.0)
            assert not blocker.is_alive()
        finally:
            gate.release()
            tier.stop(drain=False)

    def test_server_recovers_after_shedding(self, university):
        """Shedding is stateless: once the burst clears, the very next
        request is served normally."""
        config = ServeConfig(queue_limit=1, workers=1)
        tier = make_tier({"university": university}, config=config)
        gate = gate_tenant(tier.tenants.get("university"))
        try:
            client = raw_client(tier)
            blocker = threading.Thread(
                target=lambda: client.complete("ta ~ name")
            )
            blocker.start()
            assert gate.entered.acquire(timeout=10.0)
            assert client.complete("ta ~ name").status == 429
            gate.release()
            blocker.join(timeout=30.0)
            after = client.complete("ta ~ name")
            assert after.status == 200
        finally:
            gate.release()
            tier.stop(drain=False)
