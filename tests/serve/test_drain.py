"""Graceful drain: refuse new work, finish in-flight, degrade at the
drain deadline, exit clean.
"""

import threading
import time

from repro.serve import ServeConfig

from tests.serve.conftest import gate_tenant, make_tier, raw_client


class TestDrainRefusal:
    def test_draining_tier_answers_503_with_retry_after(self, university):
        tier = make_tier({"university": university})
        try:
            client = raw_client(tier)
            assert client.complete("ta ~ name").status == 200
            tier.request_drain()
            for _ in range(100):
                if tier.draining:
                    break
                time.sleep(0.01)
            response = client.complete("ta ~ name")
            assert response.status == 503
            assert response.json["draining"] is True
            assert response.retry_after is not None
            health = client.healthz()
            assert health.json["serving"]["state"] == "draining"
        finally:
            tier.stop(drain=False)

    def test_drain_is_idempotent(self, university):
        tier = make_tier({"university": university})
        try:
            tier.request_drain()
            tier.request_drain()
            for _ in range(100):
                if tier.draining:
                    break
                time.sleep(0.01)
            assert tier.draining
        finally:
            tier.stop(drain=False)


class TestInFlightCompletion:
    def test_in_flight_request_finishes_during_drain(self, university):
        """A request admitted before the drain runs to completion —
        drain never drops work that was already accepted."""
        config = ServeConfig(drain_deadline_s=30.0)
        tier = make_tier({"university": university}, config=config)
        gate = gate_tenant(tier.tenants.get("university"))
        try:
            client = raw_client(tier)
            result = {}

            def worker() -> None:
                result["response"] = client.complete("ta ~ name")

            thread = threading.Thread(target=worker)
            thread.start()
            assert gate.entered.acquire(timeout=10.0)

            tier.request_drain()
            for _ in range(100):
                if tier.draining:
                    break
                time.sleep(0.01)
            # New work refused while the old request is still running...
            assert client.complete("ta ~ name").status == 503
            # ...then the gate opens and the in-flight request succeeds.
            gate.release()
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            assert result["response"].status == 200
            assert result["response"].json["paths"]
        finally:
            gate.release()
            tier.stop(drain=False)

    def test_drain_deadline_degrades_in_flight_to_206(self, university):
        """Past the drain hard deadline the server clock expires every
        armed budget: the stuck request returns 206 best-so-far instead
        of holding the drain open."""
        config = ServeConfig(drain_deadline_s=0.2)
        tier = make_tier({"university": university}, config=config)
        gate = gate_tenant(tier.tenants.get("university"))
        try:
            client = raw_client(tier)
            result = {}

            def worker() -> None:
                result["response"] = client.complete("ta ~ name")

            thread = threading.Thread(target=worker)
            thread.start()
            assert gate.entered.acquire(timeout=10.0)

            tier.request_drain()
            # Hold the gate until the drain hard deadline has passed,
            # so the engine starts its traversal on an already-expired
            # clock.
            time.sleep(0.5)
            gate.release()
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            response = result["response"]
            assert response.status == 206
            assert response.json["exhausted"] is False
            assert response.json["truncation_reason"]
        finally:
            gate.release()
            tier.stop(drain=False)

    def test_stop_with_drain_completes_in_flight(self, university):
        """tier.stop() performs the full graceful drain end to end."""
        tier = make_tier({"university": university})
        gate = gate_tenant(tier.tenants.get("university"))
        client = raw_client(tier)
        result = {}

        def worker() -> None:
            result["response"] = client.complete("ta ~ name")

        thread = threading.Thread(target=worker)
        thread.start()
        assert gate.entered.acquire(timeout=10.0)

        stopper = threading.Thread(target=tier.stop)
        stopper.start()
        time.sleep(0.1)  # let the drain begin refusing new work
        gate.release()
        thread.join(timeout=30.0)
        stopper.join(timeout=30.0)
        assert not thread.is_alive() and not stopper.is_alive()
        assert result["response"].status in (200, 206)
