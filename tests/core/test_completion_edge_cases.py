"""Edge-case schemas for the completion algorithm."""

import pytest

from repro.core.completion import complete_paths
from repro.core.target import ClassTarget, RelationshipTarget
from repro.model.builder import SchemaBuilder
from repro.model.graph import SchemaGraph


class TestDegenerateSchemas:
    def test_single_class_with_attribute(self):
        schema = SchemaBuilder("one").cls("thing").attr("x").build()
        graph = SchemaGraph(schema)
        result = complete_paths(graph, "thing", RelationshipTarget("x"))
        assert result.expressions == ["thing.x"]

    def test_single_class_no_edges(self):
        schema = SchemaBuilder("bare").cls("thing").build()
        graph = SchemaGraph(schema)
        result = complete_paths(graph, "thing", RelationshipTarget("x"))
        assert result.is_empty

    def test_pure_isa_chain(self):
        schema = (
            SchemaBuilder("chain")
            .cls("a").isa("b")
            .cls("b").isa("c")
            .cls("c").attr("x")
            .build()
        )
        graph = SchemaGraph(schema)
        result = complete_paths(graph, "a", RelationshipTarget("x"))
        assert result.expressions == ["a@>b@>c.x"]
        assert result.paths[0].semantic_length == 1

    def test_disconnected_component(self):
        schema = (
            SchemaBuilder("split")
            .cls("a").attr("x")
            .cls("island").attr("y")
            .build()
        )
        graph = SchemaGraph(schema)
        assert complete_paths(
            graph, "a", RelationshipTarget("y")
        ).is_empty

    def test_parallel_edges_same_classes(self):
        """Two distinct relationships between the same class pair must
        both surface when their labels tie."""
        schema = (
            SchemaBuilder("parallel")
            .cls("a")
            .assoc("b", name="first", inverse_name="back1")
            .cls("a")
            .assoc("b", name="second", inverse_name="back2")
            .cls("b").attr("x")
            .build()
        )
        graph = SchemaGraph(schema)
        result = complete_paths(graph, "a", RelationshipTarget("x"))
        assert set(result.expressions) == {
            "a.first.x",
            "a.second.x",
        }

    def test_target_edge_also_reachable_longer(self):
        """Direct one-hop answer dominates multi-hop same-name answers."""
        schema = (
            SchemaBuilder("short")
            .cls("a").attr("x")
            .cls("a").assoc("b", name="via", inverse_name="back")
            .cls("b").attr("x")
            .build()
        )
        graph = SchemaGraph(schema)
        result = complete_paths(graph, "a", RelationshipTarget("x"))
        assert result.expressions == ["a.x"]

    def test_root_equals_class_target(self):
        """A class-target completion back to the root needs a genuine
        cycle and therefore returns nothing."""
        schema = (
            SchemaBuilder("selfish")
            .cls("a").assoc("b", name="out", inverse_name="back")
            .build()
        )
        graph = SchemaGraph(schema)
        result = complete_paths(graph, "a", ClassTarget("a"))
        assert result.is_empty

    def test_deep_linear_chain_is_not_recursion_limited(self):
        """A 500-deep part chain exceeds CPython's default recursion
        limit; the iterative traversal must handle it."""
        builder = SchemaBuilder("deep")
        for index in range(500):
            builder.cls(f"n{index}").has_part(
                f"n{index + 1}", inverse_name=f"n{index}"
            )
        builder.cls("n500").attr("x")
        schema = builder.build()
        graph = SchemaGraph(schema)
        result = complete_paths(graph, "n0", RelationshipTarget("x"))
        assert len(result.paths) == 1
        assert result.paths[0].length == 501
        assert result.paths[0].semantic_length == 2  # $>-chain + attr

    def test_wide_star_fanout(self):
        builder = SchemaBuilder("star")
        for index in range(60):
            builder.cls("hub").assoc(
                f"leaf{index}", name=f"to{index}", inverse_name="hub"
            )
            builder.cls(f"leaf{index}").attr("x")
        schema = builder.build()
        graph = SchemaGraph(schema)
        result = complete_paths(graph, "hub", RelationshipTarget("x"))
        assert len(result.paths) == 60


class TestMayBeHandling:
    def test_maybe_only_route(self):
        """When the only route goes through May-Be, the Possibly label
        is returned rather than nothing."""
        schema = (
            SchemaBuilder("maybe")
            .cls("sub").isa("sup")
            .cls("sub").attr("x")
            .build()
        )
        graph = SchemaGraph(schema)
        result = complete_paths(graph, "sup", RelationshipTarget("x"))
        assert result.expressions == ["sup<@sub.x"]
        label = result.paths[0].label()
        assert label.connector.is_possibly

    def test_isa_route_beats_maybe_route(self):
        schema = (
            SchemaBuilder("both")
            .cls("mid").isa("top")
            .cls("bottom").isa("mid")
            .cls("top").attr("x")
            .build()
        )
        graph = SchemaGraph(schema)
        # from mid: up to top (isa, strong) — never down via may-be
        result = complete_paths(graph, "mid", RelationshipTarget("x"))
        assert result.expressions == ["mid@>top.x"]
