"""Tail-based slow-query log.

Worst-case Algorithm 2 searches are exponential in the schema; under
production traffic, the queries worth a full trace are precisely the
outliers that blow the latency budget — tracing *everything* all the
time is unaffordable, tracing nothing hides the tail.  This module does
tail-based retention: while a :class:`SlowQueryLog` is installed, every
instrumented entry point (:meth:`Disambiguator.complete`,
``CompletionSession.ask``, ``run_fox``, the experiment harness's
per-query loop) runs under a private
:class:`~repro.obs.tracer.RecordingTracer`, but the resulting span tree
is *kept* only when the query

* exceeds the latency threshold (``threshold_ms``, when set), or
* ranks in the current top-K by elapsed time (``top_k``).

Everything else is dropped on the floor, so memory stays bounded by
``capacity`` over-threshold entries plus K ranked ones, no matter how
much traffic flows through.

Each retained :class:`SlowLogEntry` carries the query text, E, the
active ``pruning`` and ``delta`` modes (a slow query under
``pruning=none`` is expected; the same query slow under ``closure`` is
a regression — the log must say which one you are looking at), the
budget outcome (``exhausted``/``truncation_reason``/``error``), the
traversal stats, and the full trace-event subtree; exports carry
``version``  :data:`SLOWLOG_VERSION` and validate against the
checked-in ``slowlog_entry.schema.json``, which rejects records from
older versions that never recorded the modes.

Like the tracer and metrics registry, the ambient default
(:func:`get_slowlog`) is a shared no-op whose :attr:`enabled` flag the
hot path checks first, preserving the <5% no-instrumentation overhead
contract.  Entry points are reentrancy-guarded: the *outermost*
observation wins (a session ``ask`` logs one entry, not one per nested
``complete``), so entries never double-count one user-visible query.
"""

from __future__ import annotations

import contextlib
import heapq
import json
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import IO, Iterator

from repro.obs.tracer import RecordingTracer, get_tracer, use_tracer

__all__ = [
    "NullSlowQueryLog",
    "Observation",
    "SLOWLOG_VERSION",
    "SlowLogEntry",
    "SlowQueryLog",
    "get_slowlog",
    "use_slowlog",
]

#: Record format version stamped on every exported entry.  Version 1
#: never recorded the active pruning/delta modes, which made slow-query
#: triage ambiguous (was that 40ms search running the closure cuts or
#: the reference loop?); version 2 adds both and the schema rejects v1.
SLOWLOG_VERSION = 2

#: Reasons an entry was retained.
RETAINED_THRESHOLD = "threshold"
RETAINED_TOP_K = "top_k"
#: Head-sampled request: the serving tier decided at admission to keep
#: a representative trace regardless of latency.
RETAINED_SAMPLED = "sampled"
#: Tail-promoted request: it ended truncated or errored, so the trace
#: is kept no matter how fast it was (``promote_failures`` or an
#: explicit :meth:`Observation.promote`).
RETAINED_PROMOTED = "promoted"


def _ambient_modes() -> tuple[str, str]:
    """The process-wide pruning/delta modes (env override or default).

    Imported lazily: ``repro.core`` imports this module for its entry-
    point hooks, so a module-level import back into ``repro.core``
    would be circular.
    """
    from repro.core.closure import resolve_pruning
    from repro.core.compiled import resolve_delta_mode

    return resolve_pruning(None), resolve_delta_mode(None)


class SlowLogEntry:
    """One retained slow query (mutable only inside the log's lock)."""

    __slots__ = (
        "seq",
        "kind",
        "query",
        "e",
        "pruning",
        "delta",
        "elapsed_ms",
        "exhausted",
        "truncation_reason",
        "error",
        "retained",
        "stats",
        "attrs",
        "spans",
    )

    def __init__(
        self,
        seq: int,
        kind: str,
        query: str,
        e: int | None,
        pruning: str,
        delta: str,
        elapsed_ms: float,
        exhausted: bool,
        truncation_reason: str | None,
        error: str | None,
        retained: str,
        stats: dict | None,
        attrs: dict,
        spans: list[dict],
    ) -> None:
        self.seq = seq
        self.kind = kind
        self.query = query
        self.e = e
        self.pruning = pruning
        self.delta = delta
        self.elapsed_ms = elapsed_ms
        self.exhausted = exhausted
        self.truncation_reason = truncation_reason
        self.error = error
        self.retained = retained
        self.stats = stats
        self.attrs = attrs
        self.spans = spans

    def to_record(self) -> dict:
        """The JSONL record (validates against the checked-in schema)."""
        return {
            "version": SLOWLOG_VERSION,
            "seq": self.seq,
            "kind": self.kind,
            "query": self.query,
            "e": self.e,
            "pruning": self.pruning,
            "delta": self.delta,
            "elapsed_ms": self.elapsed_ms,
            "exhausted": self.exhausted,
            "truncation_reason": self.truncation_reason,
            "error": self.error,
            "retained": self.retained,
            "stats": self.stats,
            "attrs": self.attrs,
            "spans": self.spans,
        }

    def __repr__(self) -> str:
        return (
            f"SlowLogEntry(#{self.seq} {self.kind} {self.query!r}, "
            f"{self.elapsed_ms:.2f}ms, retained={self.retained})"
        )


class Observation:
    """Collector handed to the ``with slowlog.observe(...)`` body.

    The instrumented entry point decorates it while the query runs:
    :meth:`record_result` copies the budget outcome and stats off a
    :class:`~repro.core.completion.CompletionResult`-shaped object;
    :meth:`set` attaches extra attributes (row counts, query ids).
    """

    __slots__ = (
        "kind",
        "query",
        "e",
        "pruning",
        "delta",
        "attrs",
        "exhausted",
        "truncation_reason",
        "error",
        "stats",
        "promoted",
    )

    def __init__(
        self,
        kind: str,
        query: str,
        e: int | None,
        attrs: dict,
        pruning: str,
        delta: str,
    ) -> None:
        self.kind = kind
        self.query = query
        self.e = e
        self.pruning = pruning
        self.delta = delta
        self.attrs = attrs
        self.exhausted = True
        self.truncation_reason: str | None = None
        self.error: str | None = None
        self.stats: dict | None = None
        self.promoted: str | None = None

    def set(self, **attrs: object) -> "Observation":
        self.attrs.update(attrs)
        return self

    def promote(self, reason: str = RETAINED_PROMOTED) -> "Observation":
        """Force retention of this query's entry regardless of latency.

        ``reason`` becomes the entry's ``retained`` label
        (:data:`RETAINED_SAMPLED` for head-sampled requests,
        :data:`RETAINED_PROMOTED` for explicit tail promotion).
        """
        self.promoted = reason
        return self

    def record_result(self, result: object) -> None:
        """Copy budget outcome and stats from a completion result."""
        self.exhausted = bool(getattr(result, "exhausted", True))
        self.truncation_reason = getattr(result, "truncation_reason", None)
        stats = getattr(result, "stats", None)
        if stats is not None and hasattr(stats, "as_dict"):
            self.stats = stats.as_dict()
        paths = getattr(result, "paths", None)
        if paths is not None:
            self.attrs.setdefault("paths", len(paths))


class _NullObservation:
    """Shared do-nothing observation for the no-op log."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NullObservation":
        return self

    def promote(self, reason: str = RETAINED_PROMOTED) -> "_NullObservation":
        return self

    def record_result(self, result: object) -> None:
        pass


_NULL_OBSERVATION = _NullObservation()

#: Reentrancy guard: true while some observation is already open in
#: this context, so nested entry points skip (outermost wins).
_OBSERVING: ContextVar[bool] = ContextVar("repro_slowlog_observing", default=False)


class SlowQueryLog:
    """Bounded tail-based retention of slow-query traces.

    Parameters
    ----------
    threshold_ms:
        Queries at or above this latency are always retained (until
        ``capacity`` pushes the oldest out).  ``None`` disables the
        threshold rule; retention is then purely top-K.
    top_k:
        The K slowest queries seen so far are retained regardless of
        the threshold; when a new query outranks the current minimum,
        the minimum is evicted (unless it also cleared the threshold).
    capacity:
        Ring-buffer bound on threshold- and promotion-retained entries.
    promote_failures:
        When set, a query that ended truncated (``exhausted=False``) or
        errored is retained even below the latency threshold — the
        serving tier's *tail promotion*: a 206 or a 5xx is worth its
        trace no matter how quickly it failed.
    """

    enabled = True
    is_noop = False

    def __init__(
        self,
        threshold_ms: float | None = None,
        top_k: int = 10,
        capacity: int = 256,
        promote_failures: bool = False,
    ) -> None:
        if top_k < 0 or capacity < 1:
            raise ValueError("top_k must be >= 0 and capacity >= 1")
        self.threshold_ms = threshold_ms
        self.top_k = top_k
        self.capacity = capacity
        self.promote_failures = promote_failures
        self._seq = 0
        self._observed = 0
        self._by_threshold: deque[SlowLogEntry] = deque(maxlen=capacity)
        #: Min-heap of (elapsed_ms, seq, entry) — the current top-K.
        self._heap: list[tuple[float, int, SlowLogEntry]] = []
        self._lock = threading.Lock()

    # -- the entry-point hook -----------------------------------------

    @contextlib.contextmanager
    def observe(
        self,
        kind: str,
        query: str,
        e: int | None = None,
        pruning: str | None = None,
        delta: str | None = None,
        **attrs: object,
    ) -> Iterator[Observation | _NullObservation]:
        """Time the with-block as one query and consider it for retention.

        ``pruning``/``delta`` default to the ambient resolved modes
        (explicit value, else the ``REPRO_PRUNING``/``REPRO_DELTA``
        environment overrides, else the defaults), so every retained
        entry says which search loop and delta-application strategy
        were live — callers that know better (the engine knows its own
        ``pruning``) pass the exact value.

        Installs a private :class:`RecordingTracer` when no real tracer
        is ambient, so the retained entry always carries a span tree.
        Nested ``observe`` calls (an engine ``complete`` inside a
        session ``ask``) yield a no-op observation: the outermost entry
        point owns the query.
        """
        if _OBSERVING.get():
            yield _NULL_OBSERVATION
            return
        token = _OBSERVING.set(True)
        if pruning is None or delta is None:
            ambient_pruning, ambient_delta = _ambient_modes()
            pruning = pruning if pruning is not None else ambient_pruning
            delta = delta if delta is not None else ambient_delta
        observation = Observation(kind, query, e, dict(attrs), pruning, delta)
        tracer = get_tracer()
        private: RecordingTracer | None = None
        roots_before = 0
        if tracer.enabled:
            roots_before = len(tracer.roots)  # type: ignore[union-attr]
        else:
            private = RecordingTracer()
        start = time.perf_counter()
        try:
            if private is not None:
                with use_tracer(private):
                    yield observation
            else:
                yield observation
        except BaseException as error:
            observation.error = f"{type(error).__name__}: {error}"
            observation.exhausted = False
            reason = getattr(error, "reason", None)
            if isinstance(reason, str):
                observation.truncation_reason = reason
            partial = getattr(error, "partial", None)
            if partial is not None:
                observation.record_result(partial)
                observation.exhausted = False
            raise
        finally:
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            source = private if private is not None else tracer
            roots = list(source.roots[roots_before:])  # type: ignore[union-attr]
            self._consider(observation, elapsed_ms, source, roots)
            _OBSERVING.reset(token)

    # -- retention ----------------------------------------------------

    def _consider(
        self,
        observation: Observation,
        elapsed_ms: float,
        tracer: RecordingTracer,
        roots: list,
    ) -> None:
        with self._lock:
            self._observed += 1
            seq = self._seq
            self._seq += 1
            over_threshold = (
                self.threshold_ms is not None
                and elapsed_ms >= self.threshold_ms
            )
            promoted = observation.promoted
            if promoted is None and self.promote_failures and (
                observation.error is not None or not observation.exhausted
            ):
                promoted = RETAINED_PROMOTED
            in_top_k = self.top_k > 0 and (
                len(self._heap) < self.top_k or elapsed_ms > self._heap[0][0]
            )
            if not over_threshold and not in_top_k and promoted is None:
                return  # drop: trace garbage-collects with the tracer
            if over_threshold:
                retained = RETAINED_THRESHOLD
            elif promoted is not None:
                retained = promoted
            else:
                retained = RETAINED_TOP_K
            entry = SlowLogEntry(
                seq=seq,
                kind=observation.kind,
                query=observation.query,
                e=observation.e,
                pruning=observation.pruning,
                delta=observation.delta,
                elapsed_ms=elapsed_ms,
                exhausted=observation.exhausted,
                truncation_reason=observation.truncation_reason,
                error=observation.error,
                retained=retained,
                stats=observation.stats,
                attrs=_jsonable_attrs(observation.attrs),
                spans=tracer.to_events(roots),
            )
            if over_threshold or (promoted is not None and not in_top_k):
                # Promotions share the threshold ring so `capacity`
                # still bounds total retention under a failure storm.
                self._by_threshold.append(entry)
            if in_top_k:
                if len(self._heap) < self.top_k:
                    heapq.heappush(self._heap, (elapsed_ms, seq, entry))
                else:
                    heapq.heappushpop(self._heap, (elapsed_ms, seq, entry))

    # -- inspection / export ------------------------------------------

    @property
    def observed(self) -> int:
        """How many queries were considered (retained or not)."""
        with self._lock:
            return self._observed

    def entries(self) -> list[SlowLogEntry]:
        """The retained entries in arrival (seq) order, deduplicated."""
        with self._lock:
            merged = {entry.seq: entry for entry in self._by_threshold}
            for _, _, entry in self._heap:
                merged.setdefault(entry.seq, entry)
        return [merged[seq] for seq in sorted(merged)]

    def __len__(self) -> int:
        return len(self.entries())

    def render(self, limit: int | None = None) -> str:
        """Human-readable dump, slowest first."""
        entries = sorted(
            self.entries(), key=lambda entry: -entry.elapsed_ms
        )[: limit or None]
        if not entries:
            return "slow-query log is empty"
        lines = [
            f"{len(self.entries())} retained of {self.observed} observed "
            f"(threshold "
            + (
                f"{self.threshold_ms:g}ms"
                if self.threshold_ms is not None
                else "off"
            )
            + f", top-{self.top_k})"
        ]
        for entry in entries:
            flags = []
            if not entry.exhausted:
                flags.append(
                    f"partial:{entry.truncation_reason or 'unknown'}"
                )
            if entry.error:
                flags.append(f"error:{entry.error}")
            lines.append(
                f"  #{entry.seq:<4} {entry.elapsed_ms:9.2f}ms "
                f"[{entry.retained}] {entry.kind}: {entry.query}"
                f"  pruning={entry.pruning} delta={entry.delta}"
                + (f"  ({', '.join(flags)})" if flags else "")
            )
        return "\n".join(lines)

    def to_records(self) -> list[dict]:
        return [entry.to_record() for entry in self.entries()]

    def write_jsonl(self, target: str | IO[str]) -> int:
        """Write retained entries as JSON lines; returns the count."""
        records = self.to_records()
        payload = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in records
        )
        if hasattr(target, "write"):
            target.write(payload)  # type: ignore[union-attr]
        else:
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(payload)
        return len(records)

    def __repr__(self) -> str:
        return (
            f"SlowQueryLog(threshold_ms={self.threshold_ms}, "
            f"top_k={self.top_k}, retained={len(self)})"
        )


def _jsonable_attrs(attrs: dict) -> dict:
    """Attributes coerced to JSON-safe scalars (repr fallback)."""
    safe: dict = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            safe[str(key)] = value
        else:
            safe[str(key)] = repr(value)
    return safe


class NullSlowQueryLog:
    """The ambient default: observes nothing, costs one attribute read."""

    enabled = False
    is_noop = True
    threshold_ms = None
    top_k = 0
    observed = 0

    @contextlib.contextmanager
    def observe(
        self,
        kind: str,
        query: str,
        e: int | None = None,
        pruning: str | None = None,
        delta: str | None = None,
        **attrs: object,
    ) -> Iterator[_NullObservation]:
        yield _NULL_OBSERVATION

    def entries(self) -> list:
        return []

    def to_records(self) -> list:
        return []

    def __len__(self) -> int:
        return 0

    def render(self, limit: int | None = None) -> str:
        return "slow-query log is off"


_NULL_SLOWLOG = NullSlowQueryLog()

_ACTIVE: ContextVar[SlowQueryLog | NullSlowQueryLog] = ContextVar(
    "repro_slowlog", default=_NULL_SLOWLOG
)


def get_slowlog() -> SlowQueryLog | NullSlowQueryLog:
    """The slow-query log instrumented entry points should consult."""
    return _ACTIVE.get()


@contextlib.contextmanager
def use_slowlog(log: SlowQueryLog | NullSlowQueryLog):
    """Install ``log`` as the ambient slow-query log for the with-block."""
    token = _ACTIVE.set(log)
    try:
        yield log
    finally:
        _ACTIVE.reset(token)
