"""Chaos for the parallel completion paths.

:meth:`Disambiguator.complete_batch` with ``jobs > 1`` and
:func:`repro.core.parallel.prewarm` fan completions out on thread
pools; faults injected into the shared artifact must keep the same
contract the sequential path keeps:

* per-input isolation — one input's fault never corrupts another
  input's answer;
* deterministic surfacing — ``complete_batch`` raises the earliest
  failing input in submission order, not whichever thread lost a race;
* the shared completion cache never holds a truncated result;
* once the faults clear, answers are byte-identical to a fault-free
  engine's.

The non-fault contracts run as an executor matrix — ``"thread"`` and
``"process"`` backends must be indistinguishable.  The fault-injection
tests stay thread-only by design: an injected ``FaultyGraph`` wraps the
parent's artifact in place and cannot follow a ``WorkerSpec`` across
the pickle boundary (workers recompile from the schema, which has no
faults), so a process batch under injection would simply not observe
the storm.
"""

import pytest

from repro.core.compiled import CompiledSchema, invalidate
from repro.core.engine import Disambiguator
from repro.core.parallel import prewarm
from repro.errors import InjectedFaultError, ReproError
from repro.resilience.budget import Budget, use_budget
from repro.resilience.faults import FaultPlan, inject

SEEDS = (0, 1, 7)

#: The non-fault contracts run against both pool backends.
EXECUTORS = ("thread", "process")

QUERIES = [
    "ta ~ name",
    "student.take.teacher",
    "student ~ dept",
    "teacher ~ name",
]


def _assert_cache_is_clean(compiled):
    cache = getattr(compiled.cache, "_cache", compiled.cache)
    for value in cache._data.values():
        assert value.exhausted, value.truncation_reason


class TestBatchUnderFaults:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_parallel_batch_faults_are_typed_and_cache_stays_clean(
        self, university, seed
    ):
        compiled = CompiledSchema(university)
        plan = FaultPlan(seed=seed, edge_fail_rate=0.2)
        survived = failed = 0
        with inject(compiled, plan):
            # Engines bind their searcher at construction: build inside
            # the injection so the faulty graph governs the traversals.
            engine = Disambiguator(compiled)
            for _ in range(8):
                try:
                    batch = engine.complete_batch(QUERIES, jobs=4)
                    assert len(batch.results) == len(QUERIES)
                    survived += 1
                except ReproError:
                    failed += 1
                _assert_cache_is_clean(compiled)
        assert survived + failed == 8
        _assert_cache_is_clean(compiled)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_clean_parallel_batch_matches_sequential_after_storm(
        self, university, seed
    ):
        compiled = CompiledSchema(university)
        plan = FaultPlan(
            seed=seed,
            edge_fail_rate=0.3,
            cache_miss_rate=0.5,
            cache_drop_rate=0.5,
        )
        with inject(compiled, plan):
            storm_engine = Disambiguator(compiled)
            for _ in range(5):
                try:
                    storm_engine.complete_batch(QUERIES, jobs=4)
                except ReproError:
                    pass
        # Storm over: a fresh engine on the restored artifact answers
        # byte-identically to a private fault-free engine.
        reference = Disambiguator(CompiledSchema(university))
        engine = Disambiguator(compiled)
        batch = engine.complete_batch(QUERIES, jobs=4)
        for query, result in zip(QUERIES, batch.results):
            expected = reference.complete(query)
            assert [str(p) for p in result.paths] == [
                str(p) for p in expected.paths
            ]
            assert result.exhausted
        _assert_cache_is_clean(compiled)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_batch_raises_earliest_failing_input_in_order(
        self, university, executor
    ):
        """Submission order, not worker-completion order, decides which
        exception a failing parallel batch surfaces — identically on
        both pool backends."""
        compiled = CompiledSchema(university)
        engine = Disambiguator(compiled)
        # Two invalid expressions among valid ones: the first invalid
        # one in submission order must be the exception that surfaces.
        inputs = [
            "ta ~ name",
            "zzz_first_bad ~ nope",
            "student.take.teacher",
            "zzz_second_bad ~ nope",
        ]
        for _ in range(4):  # deterministic across repeats
            with pytest.raises(ReproError) as exc:
                engine.complete_batch(inputs, jobs=4, executor=executor)
            assert "zzz_first_bad" in str(exc.value)
            assert "zzz_second_bad" not in str(exc.value)

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_budgeted_parallel_batch_never_caches_truncation(
        self, cupid, seed, executor
    ):
        """Tiny ambient node budgets under jobs=4: whatever trips, no
        truncated result may land in the shared cache — on either pool
        backend (workers rebuild the budget from its shipped limits)."""
        # Forked workers inherit the parent's compile registry; a
        # warm inherited cache would serve exhausted answers and mask
        # the truncation this test is about.
        invalidate()
        compiled = CompiledSchema(cupid)
        engine = Disambiguator(compiled, e=2)
        budget = Budget(max_nodes=5, partial_ok=True)
        with use_budget(budget):
            batch = engine.complete_batch(
                ["experiment ~ conductance", "experiment ~ temperature"],
                jobs=4,
                executor=executor,
            )
        assert any(not r.exhausted for r in batch.results)
        _assert_cache_is_clean(compiled)
        # A later unbudgeted run completes fully and repopulates.
        full = engine.complete_batch(["experiment ~ conductance"], jobs=2)
        assert all(r.exhausted for r in full.results)
        _assert_cache_is_clean(compiled)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_per_input_budget_isolation(self, cupid, executor):
        """Each input gets its own freshly armed meter: a budget that
        truncates the expensive query must not bleed into (or starve)
        the cheap ones sharing its batch, on either backend."""
        invalidate()  # cold workers — see the budgeted test above
        compiled = CompiledSchema(cupid)
        engine = Disambiguator(compiled, e=3)
        cheap = Disambiguator(CompiledSchema(cupid), e=3)
        nodes_for_cheap = (
            cheap.complete("site ~ name").stats.recursive_calls + 2
        )
        with use_budget(Budget(max_nodes=nodes_for_cheap, partial_ok=True)):
            batch = engine.complete_batch(
                ["experiment ~ conductance", "site ~ name"],
                jobs=4,
                executor=executor,
            )
        heavy, light = batch.results
        assert not heavy.exhausted  # its own meter tripped
        assert light.exhausted  # unaffected by its neighbor's trip
        _assert_cache_is_clean(compiled)


class TestPrewarmUnderFaults:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_prewarm_swallows_faults_and_keeps_cache_clean(
        self, university, seed
    ):
        compiled = CompiledSchema(university)
        plan = FaultPlan(seed=seed, edge_fail_rate=0.3)
        with inject(compiled, plan):
            warmed = prewarm(Disambiguator(compiled), QUERIES, jobs=4)
            _assert_cache_is_clean(compiled)
        assert 0 <= warmed <= len(QUERIES)
        _assert_cache_is_clean(compiled)
        # The failures were swallowed, not cached: a clean pass still
        # produces exhaustive, reference-identical answers.
        reference = Disambiguator(CompiledSchema(university))
        engine = Disambiguator(compiled)
        for query in QUERIES:
            result = engine.complete(query)
            assert result.exhausted
            assert [str(p) for p in result.paths] == [
                str(p) for p in reference.complete(query).paths
            ]

    def test_prewarm_with_total_failure_warms_nothing(self, university):
        compiled = CompiledSchema(university)
        plan = FaultPlan(seed=0, edge_fail_rate=1.0)
        compiled.cache.clear()
        with inject(compiled, plan):
            warmed = prewarm(Disambiguator(compiled), QUERIES, jobs=4)
        assert warmed == 0
        assert len(compiled.cache) == 0

    def test_prewarm_total_failure_surfaces_nothing_to_caller(
        self, university
    ):
        """prewarm never raises — the sequential pass owns the error."""
        compiled = CompiledSchema(university)
        with inject(compiled, FaultPlan(seed=1, edge_fail_rate=1.0)):
            engine = Disambiguator(compiled)
            assert prewarm(engine, ["ta ~ name"], jobs=2) == 0
            # The sequential pass hits the very fault prewarm swallowed.
            with pytest.raises(InjectedFaultError):
                engine.complete("ta ~ name")
