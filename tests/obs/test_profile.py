"""Tests for the span-taxonomy profiling hooks (repro.obs.profile)."""

import io

from repro.core.engine import Disambiguator
from repro.obs.profile import DEFAULT_PROFILED_SPANS, SpanProfiler
from repro.obs.tracer import RecordingTracer, use_tracer
from repro.schemas.university import build_university_schema


def _work(n: int = 4000) -> int:
    return sum(i * i for i in range(n))


class TestSpanProfiler:
    def test_profiles_only_taxonomy_spans(self):
        profiler = SpanProfiler(spans={"traverse"})
        with use_tracer(profiler):
            with profiler.span("traverse"):
                _work()
            with profiler.span("unrelated"):
                _work()
        assert profiler.profiled_names == ["traverse"]

    def test_nested_matching_spans_attach_once(self):
        # CPython allows one active profiler; the outermost matching
        # span owns the profile and nested matches must not re-attach.
        profiler = SpanProfiler(spans={"complete", "traverse"})
        with use_tracer(profiler):
            with profiler.span("complete"):
                with profiler.span("traverse"):
                    _work()
        assert profiler.profiled_names == ["complete"]

    def test_repeated_spans_accumulate_into_one_profile(self):
        profiler = SpanProfiler(spans={"traverse"})
        with use_tracer(profiler):
            for _ in range(3):
                with profiler.span("traverse"):
                    _work()
        assert profiler.profiled_names == ["traverse"]
        collapsed = profiler.collapsed("traverse")
        assert collapsed  # some attributed time survived rounding

    def test_collapsed_stack_format(self):
        profiler = SpanProfiler(spans={"traverse"})
        with use_tracer(profiler):
            with profiler.span("traverse"):
                _work(200_000)
        lines = profiler.collapsed().strip().splitlines()
        assert lines
        for line in lines:
            frames, _, count = line.rpartition(" ")
            assert frames.startswith("span:traverse;")
            assert int(count) >= 1  # flamegraph counts are integers

    def test_collapsed_mentions_profiled_functions(self):
        profiler = SpanProfiler(spans={"traverse"})
        with use_tracer(profiler):
            with profiler.span("traverse"):
                _work(200_000)
        collapsed = profiler.collapsed()
        assert "_work" in collapsed

    def test_write_collapsed_and_report(self, tmp_path):
        profiler = SpanProfiler(spans={"traverse"})
        with use_tracer(profiler):
            with profiler.span("traverse"):
                _work(200_000)
        target = tmp_path / "prof.collapsed"
        count = profiler.write_collapsed(target)
        assert count == len(target.read_text().splitlines()) > 0
        buffer = io.StringIO()
        count2 = profiler.write_collapsed(buffer)
        assert count2 == count
        report = profiler.report()
        assert "span 'traverse'" in report
        assert "cumulative" in report

    def test_empty_profiler_reports_placeholder(self):
        profiler = SpanProfiler()
        assert profiler.collapsed() == ""
        assert profiler.report() == "no profiled spans recorded"

    def test_inner_tracer_still_records(self):
        inner = RecordingTracer()
        profiler = SpanProfiler(inner=inner, spans={"traverse"})
        with use_tracer(profiler):
            with profiler.span("traverse", root="ta") as span:
                span.set(paths=1)
                span.event("prune")
            with profiler.span("other"):
                pass
        assert [root.name for root in inner.roots] == ["traverse", "other"]
        assert inner.roots[0].attrs == {"root": "ta", "paths": 1}
        assert profiler.roots is inner.roots or list(profiler.roots) == list(
            inner.roots
        )

    def test_default_taxonomy_covers_the_entry_points(self):
        for name in ("complete", "compile", "evaluate", "fox", "ask"):
            assert name in DEFAULT_PROFILED_SPANS


class TestEngineIntegration:
    def test_profiling_a_real_completion(self):
        profiler = SpanProfiler()
        with use_tracer(profiler):
            engine = Disambiguator(build_university_schema())
            result = engine.complete("ta ~ name")
        assert len(result.paths) == 2  # profiling must not change results
        assert "compile" in profiler.profiled_names or (
            "complete" in profiler.profiled_names
        )
        # the profile saw actual engine internals
        assert profiler.collapsed()
