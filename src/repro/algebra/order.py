"""The *better-than* partial order on connectors (paper Figure 3).

``c1 < c2`` (written ``order.better(c1, c2)``) means connector ``c1``
denotes a *stronger, more plausible* relationship than ``c2``; AGG keeps
the better label.  Figure 3 of the paper is an image; the default order
here is reconstructed from the constraints the text states explicitly:

* every connector is incomparable to itself;
* inverse connectors are incomparable;
* every connector is incomparable with its Possibly version;
* ``[@>, 0]`` acts as an annihilator of AGG, so ``@>`` must be at least
  as strong as everything comparable to it;
* the strength ranking follows the cited cognitive-science ordering:
  taxonomic < part-whole < association < sharing < indirect association.

The default order compares *effective ranks* (``2 * strength + 1`` extra
for Possibly variants) and excludes same-base and inverse-base pairs;
this is a genuine strict partial order (irreflexive, antisymmetric,
transitive — machine-checked in the tests).

Because the paper reports trying ~20 AGG alternatives, the order is a
pluggable strategy object; :func:`flat_order` and :func:`total_order`
are the ablation variants benchmarked in ``experiments.ablation``.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Iterable

from repro.algebra.connectors import ALL_CONNECTORS, Connector

__all__ = [
    "PartialOrder",
    "default_order",
    "flat_order",
    "total_order",
    "rank_order",
    "DEFAULT_ORDER",
]


class PartialOrder:
    """A strict partial order over the connector alphabet.

    Parameters
    ----------
    better_fn:
        Predicate ``(c1, c2) -> bool`` meaning "c1 is strictly better".
        It is evaluated once per ordered pair at construction and cached.
    name:
        Identifier used in ablation reports.
    """

    def __init__(
        self,
        better_fn: Callable[[Connector, Connector], bool],
        name: str = "custom",
    ) -> None:
        self.name = name
        self._better: frozenset[tuple[Connector, Connector]] = frozenset(
            (c1, c2)
            for c1 in ALL_CONNECTORS
            for c2 in ALL_CONNECTORS
            if c1 is not c2 and better_fn(c1, c2)
        )
        self._content_key: str | None = None

    def better(self, c1: Connector, c2: Connector) -> bool:
        """True if ``c1`` is strictly better (stronger) than ``c2``."""
        return (c1, c2) in self._better

    def comparable(self, c1: Connector, c2: Connector) -> bool:
        """True if one of the two connectors is strictly better."""
        return self.better(c1, c2) or self.better(c2, c1)

    def incomparable(self, c1: Connector, c2: Connector) -> bool:
        """True if neither connector is better (includes ``c1 is c2``)."""
        return not self.comparable(c1, c2)

    def minimal(self, connectors: Iterable[Connector]) -> set[Connector]:
        """The connectors of the set not beaten by another member."""
        items = set(connectors)
        return {
            c
            for c in items
            if not any(self.better(other, c) for other in items if other is not c)
        }

    def pairs(self) -> frozenset[tuple[Connector, Connector]]:
        """All strictly-better pairs (for introspection and tests)."""
        return self._better

    def content_key(self) -> str:
        """A stable digest of the order's *content* (its better-pairs).

        Two orders with identical pairs share the key regardless of how
        or when they were constructed; the caution-set cache and the
        :mod:`repro.core.compiled` registry key on this instead of
        ``id()``, which is unsound once an order is garbage-collected.
        """
        if self._content_key is None:
            pairs = sorted(
                (winner.symbol, loser.symbol) for winner, loser in self._better
            )
            blob = ";".join(f"{w}<{l}" for w, l in pairs)
            self._content_key = hashlib.sha256(blob.encode()).hexdigest()
        return self._content_key

    def beats_map(self) -> dict[Connector, frozenset[Connector]]:
        """``map[c]`` = the connectors ``c`` strictly beats.

        Precomputed view for hot loops (one set-membership test instead
        of a tuple construction per comparison).
        """
        result: dict[Connector, set[Connector]] = {c: set() for c in ALL_CONNECTORS}
        for winner, loser in self._better:
            result[winner].add(loser)
        return {c: frozenset(losers) for c, losers in result.items()}

    def __repr__(self) -> str:
        return f"PartialOrder({self.name!r}, pairs={len(self._better)})"


def _excluded(c1: Connector, c2: Connector) -> bool:
    """Pairs the paper declares incomparable regardless of strength."""
    if c1.base is c2.base:
        return True  # same connector, or a connector vs. its Possibly twin
    if c1.inverse_base is c2.base:
        return True  # inverse connectors (and their Possibly versions)
    return False


def default_order() -> PartialOrder:
    """The reconstructed Figure 3 order (see module docstring)."""

    def better(c1: Connector, c2: Connector) -> bool:
        if _excluded(c1, c2):
            return False
        return c1.sort_rank < c2.sort_rank

    return PartialOrder(better, name="default")


def rank_order(strict_possibly: bool = False) -> PartialOrder:
    """Variant comparing base strength ranks only.

    With ``strict_possibly`` False (the default), a Possibly connector is
    a peer of its base rank, making e.g. ``$>`` and ``.*`` compare only
    by rank; with True, any plain connector beats any Possibly connector
    of equal or weaker rank.  Ablation variants for ``AGG``.
    """

    def better(c1: Connector, c2: Connector) -> bool:
        if _excluded(c1, c2):
            return False
        if c1.strength_rank != c2.strength_rank:
            return c1.strength_rank < c2.strength_rank
        if strict_possibly:
            return not c1.is_possibly and c2.is_possibly
        return False

    name = "rank-strict" if strict_possibly else "rank"
    return PartialOrder(better, name=name)


def flat_order() -> PartialOrder:
    """No connector beats any other — AGG degenerates to shortest-path.

    The ablation baseline: ranking by semantic length alone.
    """
    return PartialOrder(lambda c1, c2: False, name="flat")


def total_order() -> PartialOrder:
    """Every pair comparable (ties broken by alphabet position).

    Deliberately violates the paper's incomparability constraints; used
    in the ablation to show why forced totality loses plausible answers
    (AGG can never return the multiple completions the user must choose
    among).
    """
    position = {c: i for i, c in enumerate(ALL_CONNECTORS)}

    def better(c1: Connector, c2: Connector) -> bool:
        key1 = (c1.sort_rank, position[c1])
        key2 = (c2.sort_rank, position[c2])
        return key1 < key2

    return PartialOrder(better, name="total")


#: The order used everywhere by default.
DEFAULT_ORDER = default_order()
