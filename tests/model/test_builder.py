"""Tests for the fluent schema builder."""

import pytest

from repro.model.builder import SchemaBuilder
from repro.model.kinds import RelationshipKind


class TestFluentConstruction:
    def test_classes_created_on_demand(self):
        schema = SchemaBuilder("t").cls("student").isa("person").build()
        assert schema.has_class("student")
        assert schema.has_class("person")

    def test_isa_installs_maybe_inverse(self):
        schema = SchemaBuilder("t").cls("student").isa("person").build()
        inverse = schema.get_relationship("person", "student")
        assert inverse.kind is RelationshipKind.MAY_BE

    def test_has_part_and_part_of(self):
        schema = (
            SchemaBuilder("t")
            .cls("engine").has_part("screw")
            .cls("motor").part_of("assembly")
            .build()
        )
        assert (
            schema.get_relationship("engine", "screw").kind
            is RelationshipKind.HAS_PART
        )
        assert (
            schema.get_relationship("motor", "assembly").kind
            is RelationshipKind.IS_PART_OF
        )
        # auto inverses
        assert (
            schema.get_relationship("screw", "engine").kind
            is RelationshipKind.IS_PART_OF
        )
        assert (
            schema.get_relationship("assembly", "motor").kind
            is RelationshipKind.HAS_PART
        )

    def test_assoc_with_custom_names(self):
        schema = (
            SchemaBuilder("t")
            .cls("student")
            .assoc("course", name="take", inverse_name="student")
            .build()
        )
        assert schema.get_relationship("student", "take").target == "course"
        assert schema.get_relationship("course", "student").target == "student"

    def test_attr(self):
        schema = SchemaBuilder("t").cls("person").attr("age", "I").build()
        rel = schema.get_relationship("person", "age")
        assert rel.target == "I"

    def test_chaining_switches_class_scope(self):
        schema = (
            SchemaBuilder("t")
            .cls("a").attr("x")
            .cls("b").attr("y")
            .build()
        )
        assert schema.has_relationship("a", "x")
        assert schema.has_relationship("b", "y")
        assert not schema.has_relationship("a", "y")

    def test_build_validates_isa_cycles(self):
        builder = SchemaBuilder("t")
        builder.cls("a").isa("b")
        with pytest.raises(Exception):
            builder.cls("b").isa("a").build()

    def test_doc_is_carried(self):
        builder = SchemaBuilder("t")
        builder.cls("person", doc="a human")
        assert builder.schema.get_class("person").doc == "a human"
