"""Relationship kinds of the object-oriented data model (paper Section 2.1).

The paper's model has five kinds of binary relationships between classes:

========================  ==========  =======================================
Kind                      Connector   Meaning
========================  ==========  =======================================
``ISA``                   ``@>``      subclass to superclass (inclusion +
                                      specialization; inherits relationships)
``MAY_BE``                ``<@``      superclass to subclass (inverse of Isa)
``HAS_PART``              ``$>``      super-part class to sub-part class
``IS_PART_OF``            ``<$``      sub-part class to super-part class
``IS_ASSOCIATED_WITH``    ``.``       mutual association unrelated to
                                      structure (self-inverse kind)
========================  ==========  =======================================

Each kind knows its inverse kind, its connector symbol, and its *semantic
length* contribution (0 for the taxonomic kinds Isa/May-Be, 1 otherwise —
paper Section 3.2).
"""

from __future__ import annotations

import enum

__all__ = ["RelationshipKind", "KIND_BY_SYMBOL"]


class RelationshipKind(enum.Enum):
    """The five primary relationship kinds of the paper's data model."""

    ISA = "@>"
    MAY_BE = "<@"
    HAS_PART = "$>"
    IS_PART_OF = "<$"
    IS_ASSOCIATED_WITH = "."

    @property
    def symbol(self) -> str:
        """Connector symbol used in path-expression syntax."""
        return self.value

    @property
    def inverse(self) -> "RelationshipKind":
        """The kind of the inverse relationship.

        Isa/May-Be and Has-Part/Is-Part-Of are mutual inverses;
        Is-Associated-With is its own inverse (paper Section 2.1).
        """
        return _INVERSES[self]

    @property
    def semantic_length(self) -> int:
        """Semantic length of a single edge of this kind (Section 3.2)."""
        if self in (RelationshipKind.ISA, RelationshipKind.MAY_BE):
            return 0
        return 1

    @property
    def is_taxonomic(self) -> bool:
        """True for the inheritance kinds Isa and May-Be."""
        return self in (RelationshipKind.ISA, RelationshipKind.MAY_BE)

    @property
    def is_structural(self) -> bool:
        """True for the part-whole kinds Has-Part and Is-Part-Of."""
        return self in (RelationshipKind.HAS_PART, RelationshipKind.IS_PART_OF)

    @classmethod
    def from_symbol(cls, symbol: str) -> "RelationshipKind":
        """Return the kind whose connector symbol is ``symbol``.

        Raises ``KeyError`` for unknown symbols; the parser wraps this in a
        friendlier error.
        """
        return KIND_BY_SYMBOL[symbol]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RelationshipKind.{self.name}"


_INVERSES = {
    RelationshipKind.ISA: RelationshipKind.MAY_BE,
    RelationshipKind.MAY_BE: RelationshipKind.ISA,
    RelationshipKind.HAS_PART: RelationshipKind.IS_PART_OF,
    RelationshipKind.IS_PART_OF: RelationshipKind.HAS_PART,
    RelationshipKind.IS_ASSOCIATED_WITH: RelationshipKind.IS_ASSOCIATED_WITH,
}

#: Mapping from connector symbol to kind, used by the parsers.
KIND_BY_SYMBOL = {kind.value: kind for kind in RelationshipKind}
