"""Bench A3 — scalability of the completion algorithm with schema size.

The paper motivates efficiency on its 92-class schema (Section 5.4);
this sweep runs the completion over random schemas of growing size and
reports recursive calls and time per query, plus a repeated-timing
microbenchmark at the CUPID-comparable size.
"""

import time

import pytest

from benchmarks.conftest import emit
from repro.core.completion import complete_paths
from repro.core.target import RelationshipTarget
from repro.experiments.reporting import table
from repro.model.graph import SchemaGraph
from repro.schemas.generator import GeneratorConfig, generate_schema

SIZES = (25, 50, 100, 200)


def _run_one(graph):
    roots = [
        cls.name
        for cls in graph.schema.classes(include_primitives=False)
        if graph.edges_from(cls.name)
    ][:5]
    target = RelationshipTarget("label")
    calls = 0
    for root in roots:
        calls += complete_paths(graph, root, target, e=1).stats.recursive_calls
    return calls


@pytest.mark.benchmark(group="scalability")
def test_scalability_sweep(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for size in SIZES:
            graph = SchemaGraph(
                generate_schema(GeneratorConfig(classes=size, seed=42))
            )
            started = time.perf_counter()
            calls = _run_one(graph)
            elapsed = time.perf_counter() - started
            rows.append(
                (
                    size,
                    graph.schema.relationship_count,
                    calls,
                    f"{elapsed:.3f}s",
                )
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation A3: scalability with schema size (5 completions each)",
        table(["classes", "relationships", "recursive calls", "time"], rows),
    )
    assert len(rows) == len(SIZES)


@pytest.mark.benchmark(group="scalability")
def test_cupid_scale_single_completion(benchmark, cupid_graph):
    """Repeated timing of one representative completion at paper scale."""
    target = RelationshipTarget("latitude")
    result = benchmark(
        lambda: complete_paths(cupid_graph, "simulation", target, e=1)
    )
    assert result.expressions == ["simulation$>site$>location.latitude"]
