"""Schema corpus: the paper's Figure 2 university schema, a part-whole
demo schema, the synthetic CUPID-scale schema, and a random generator.
"""

from repro.schemas.cupid import (
    AUXILIARY_CLASSES,
    CUPID_CLASS_COUNT,
    CUPID_RELATIONSHIP_COUNT,
    build_cupid_schema,
)
from repro.schemas.generator import GeneratorConfig, generate_schema
from repro.schemas.hospital import (
    HOSPITAL_AUXILIARY_CLASSES,
    build_hospital_schema,
)
from repro.schemas.parts import build_parts_schema
from repro.schemas.university import UNIVERSITY_EXAMPLES, build_university_schema

__all__ = [
    "AUXILIARY_CLASSES",
    "CUPID_CLASS_COUNT",
    "CUPID_RELATIONSHIP_COUNT",
    "GeneratorConfig",
    "HOSPITAL_AUXILIARY_CLASSES",
    "UNIVERSITY_EXAMPLES",
    "build_cupid_schema",
    "build_hospital_schema",
    "build_parts_schema",
    "build_university_schema",
    "generate_schema",
]
