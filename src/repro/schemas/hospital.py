"""A hospital information system schema — the second evaluation domain.

The paper's future-work section calls for "a comprehensive experiment
with several schemas, users, and queries" (§7).  This schema provides
the second domain: a mid-size clinical information model (~40 user
classes) with the same structural ingredients as the CUPID schema —
part-whole decomposition (hospital → ward → bed), Isa layers
(clinician/patient role taxonomies), cross-cutting associations
(admissions, orders, results), and one auxiliary hub (the codes
registry) for the domain-knowledge experiment.
"""

from __future__ import annotations

from repro.model.builder import SchemaBuilder
from repro.model.schema import Schema

__all__ = ["build_hospital_schema", "HOSPITAL_AUXILIARY_CLASSES"]

#: The auxiliary hub class(es) a hospital data manager would exclude.
HOSPITAL_AUXILIARY_CLASSES = ("code_registry",)


def build_hospital_schema() -> Schema:
    """Build the hospital schema (fresh instance per call)."""
    builder = SchemaBuilder("hospital")

    # People and role taxonomy.
    builder.cls("person").attr("name").attr("birth_year", "I")
    builder.cls("patient").isa("person").attr("mrn", "I")
    builder.cls("clinician").isa("person").attr("license", "C")
    builder.cls("physician").isa("clinician")
    builder.cls("nurse").isa("clinician")
    builder.cls("surgeon").isa("physician")
    builder.cls("resident").isa("physician")
    # A chief resident both practices and administrates.
    builder.cls("administrator").isa("person")
    builder.cls("chief_resident").isa("resident").isa("administrator")

    # Facility part-whole spine.
    builder.cls("hospital").attr("name")
    builder.cls("hospital").has_part("campus", inverse_name="hospital")
    builder.cls("campus").has_part("building", inverse_name="campus")
    builder.cls("building").has_part("ward", inverse_name="building")
    builder.cls("ward").attr("name")
    builder.cls("ward").has_part("room", inverse_name="ward")
    builder.cls("room").has_part("bed", inverse_name="room")
    builder.cls("bed").attr("label")
    builder.cls("building").has_part("operating_theater", inverse_name="building")
    builder.cls("operating_theater").attr("label")
    builder.cls("hospital").has_part("pharmacy", inverse_name="hospital")
    builder.cls("pharmacy").has_part("drug_stock", inverse_name="pharmacy")
    builder.cls("drug_stock").attr("quantity", "I")

    # Clinical process.
    builder.cls("admission").attr("admitted_on")
    builder.cls("patient").assoc("admission", name="admission", inverse_name="patient")
    builder.cls("admission").assoc("bed", name="bed", inverse_name="admission")
    builder.cls("admission").assoc(
        "physician", name="attending", inverse_name="admits"
    )
    builder.cls("diagnosis").attr("description")
    builder.cls("admission").assoc(
        "diagnosis", name="diagnosis", inverse_name="admission"
    )
    builder.cls("order").attr("ordered_on")
    builder.cls("admission").assoc("order", name="order", inverse_name="admission")
    builder.cls("medication_order").isa("order").attr("dose", "R")
    builder.cls("lab_order").isa("order")
    builder.cls("drug").attr("name")
    builder.cls("medication_order").assoc(
        "drug", name="drug", inverse_name="ordered_in"
    )
    builder.cls("drug_stock").assoc("drug", name="drug", inverse_name="stocked_as")
    builder.cls("lab_test").attr("name")
    builder.cls("lab_order").assoc("lab_test", name="test", inverse_name="ordered_in")
    builder.cls("lab_result").attr("value", "R").attr("unit")
    builder.cls("lab_order").assoc(
        "lab_result", name="result", inverse_name="order"
    )
    builder.cls("procedure").attr("name")
    builder.cls("procedure").assoc(
        "operating_theater", name="theater", inverse_name="procedure"
    )
    builder.cls("procedure").assoc(
        "surgeon", name="surgeon", inverse_name="performs"
    )
    builder.cls("admission").assoc(
        "procedure", name="procedure", inverse_name="admission"
    )

    # Staffing.
    builder.cls("department").attr("name")
    builder.cls("hospital").has_part("department", inverse_name="hospital")
    builder.cls("clinician").assoc(
        "department", name="department", inverse_name="staff"
    )
    builder.cls("nurse").assoc("ward", name="assigned_ward", inverse_name="nurses")

    # Auxiliary hub: a terminology/code registry touching many classes.
    builder.cls("code_registry").attr("version")
    for target in ("diagnosis", "drug", "lab_test", "procedure", "department"):
        builder.cls("code_registry").assoc(
            target, name=target, inverse_name="code_registry"
        )

    return builder.build()
