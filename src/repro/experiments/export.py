"""CSV export of experiment results.

The harness prints text figures; downstream plotting wants flat files.
Each exporter writes one CSV with a stable header so the paper's
figures can be regenerated in any plotting stack.
"""

from __future__ import annotations

import csv
from collections.abc import Sequence
from pathlib import Path

from repro.experiments.figure6 import Figure6Result
from repro.experiments.figure7 import Figure7Result
from repro.experiments.harness import QueryOutcome, SweepPoint

__all__ = [
    "export_sweep_csv",
    "export_figure6_csv",
    "export_figure7_csv",
    "export_outcomes_csv",
]


def export_sweep_csv(
    points: Sequence[SweepPoint], path: str | Path
) -> None:
    """Figure 5 series: one row per E value."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["e", "average_recall", "average_precision", "average_returned"]
        )
        for point in points:
            writer.writerow(
                [
                    point.e,
                    f"{point.average_recall:.6f}",
                    f"{point.average_precision:.6f}",
                    f"{point.average_returned:.3f}",
                ]
            )


def export_figure6_csv(result: Figure6Result, path: str | Path) -> None:
    """Figure 6: both precision arms, one row per E value."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["e", "precision_without_dk", "precision_with_dk"]
        )
        for no_dk, dk in zip(result.without_dk, result.with_dk):
            writer.writerow(
                [
                    no_dk.e,
                    f"{no_dk.average_precision:.6f}",
                    f"{dk.average_precision:.6f}",
                ]
            )


def export_figure7_csv(result: Figure7Result, path: str | Path) -> None:
    """Figure 7: one row per query, ordered by processing complexity."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["query_id", "expression", "recursive_calls", "elapsed_seconds"]
        )
        for timing in result.timings:
            writer.writerow(
                [
                    timing.query_id,
                    timing.text,
                    timing.recursive_calls,
                    f"{timing.elapsed_seconds:.6f}",
                ]
            )


def export_outcomes_csv(
    outcomes: Sequence[QueryOutcome], path: str | Path
) -> None:
    """Raw per-query outcomes at one setting (for custom analyses)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "query_id",
                "e",
                "recall",
                "precision",
                "returned_count",
                "intent_count",
                "recursive_calls",
                "elapsed_seconds",
            ]
        )
        for outcome in outcomes:
            writer.writerow(
                [
                    outcome.query.query_id,
                    outcome.e,
                    f"{outcome.recall:.6f}",
                    f"{outcome.precision:.6f}",
                    outcome.returned_count,
                    len(outcome.intent),
                    outcome.recursive_calls,
                    f"{outcome.elapsed_seconds:.6f}",
                ]
            )
