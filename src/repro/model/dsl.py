"""A small line-oriented text DSL for declaring schemas.

Intended for fixtures, docs, and quick experimentation; the format is
two-pass (classes first, then relationships), so forward references
work.  Grammar (one declaration per line, ``#`` comments)::

    schema <name>

    class <name> [isa <super> [<super> ...]]
        attr <name> [: I|R|C|B]
        isa <target> [as <relname>] [inverse <invname>]
        haspart <target> [as <relname>] [inverse <invname>]
        partof <target> [as <relname>] [inverse <invname>]
        assoc <target> [as <relname>] [inverse <invname>]

Indentation is cosmetic — a relationship line applies to the most recent
``class`` line.  Example::

    schema university
    class person
        attr name
        attr ssn : I
    class student isa person
        assoc course as take inverse student
"""

from __future__ import annotations

from repro.errors import DslSyntaxError
from repro.model.kinds import RelationshipKind
from repro.model.schema import Schema

__all__ = ["parse_schema_dsl", "schema_to_dsl"]

_KIND_KEYWORDS = {
    "isa": RelationshipKind.ISA,
    "haspart": RelationshipKind.HAS_PART,
    "partof": RelationshipKind.IS_PART_OF,
    "assoc": RelationshipKind.IS_ASSOCIATED_WITH,
}


def _strip_comment(line: str) -> str:
    index = line.find("#")
    return line if index < 0 else line[:index]


def parse_schema_dsl(text: str) -> Schema:
    """Parse DSL text into a validated :class:`Schema`."""
    lines = [
        (number, _strip_comment(raw).strip())
        for number, raw in enumerate(text.splitlines(), start=1)
    ]
    lines = [(number, line) for number, line in lines if line]

    schema_name = "schema"
    class_decls: list[tuple[int, list[str]]] = []
    body_lines: list[tuple[int, str, list[str]]] = []  # (line, class, tokens)
    current_class: str | None = None

    # Pass 1: collect class names so forward references resolve.
    for number, line in lines:
        tokens = line.split()
        keyword = tokens[0].lower()
        if keyword == "schema":
            if len(tokens) != 2:
                raise DslSyntaxError("expected: schema <name>", number)
            schema_name = tokens[1]
        elif keyword == "class":
            if len(tokens) < 2:
                raise DslSyntaxError("expected: class <name> ...", number)
            class_decls.append((number, tokens[1:]))
            current_class = tokens[1]
        else:
            if current_class is None:
                raise DslSyntaxError(
                    f"{keyword!r} before any class declaration", number
                )
            body_lines.append((number, current_class, tokens))

    schema = Schema(schema_name)
    for number, tokens in class_decls:
        name = tokens[0]
        if not schema.has_class(name):
            schema.add_class(name)

    # Pass 2: class-header isa clauses, then body relationships.
    for number, tokens in class_decls:
        name, rest = tokens[0], tokens[1:]
        if not rest:
            continue
        if rest[0].lower() != "isa":
            raise DslSyntaxError(
                f"unexpected {rest[0]!r} after class name", number
            )
        supers = rest[1:]
        if not supers:
            raise DslSyntaxError("isa clause names no superclass", number)
        for superclass in supers:
            _require_class(schema, superclass, number)
            schema.add_relationship(name, superclass, RelationshipKind.ISA)

    for number, source, tokens in body_lines:
        _parse_body_line(schema, source, tokens, number)

    schema.validate()
    return schema


def _require_class(schema: Schema, name: str, line: int) -> None:
    if not schema.has_class(name):
        raise DslSyntaxError(f"unknown class {name!r}", line)


def _parse_body_line(
    schema: Schema, source: str, tokens: list[str], number: int
) -> None:
    keyword = tokens[0].lower()
    if keyword == "attr":
        _parse_attr(schema, source, tokens[1:], number)
        return
    kind = _KIND_KEYWORDS.get(keyword)
    if kind is None:
        raise DslSyntaxError(f"unknown declaration {keyword!r}", number)
    rest = tokens[1:]
    if not rest:
        raise DslSyntaxError(f"{keyword} names no target class", number)
    target = rest[0]
    _require_class(schema, target, number)
    name = ""
    inverse_name = ""
    index = 1
    while index < len(rest):
        modifier = rest[index].lower()
        if modifier == "as" and index + 1 < len(rest):
            name = rest[index + 1]
            index += 2
        elif modifier == "inverse" and index + 1 < len(rest):
            inverse_name = rest[index + 1]
            index += 2
        else:
            raise DslSyntaxError(f"unexpected token {rest[index]!r}", number)
    schema.add_relationship(
        source, target, kind, name=name, inverse_name=inverse_name
    )


def _parse_attr(
    schema: Schema, source: str, rest: list[str], number: int
) -> None:
    # Accept "attr name", "attr name : I", and "attr name: I".
    joined = " ".join(rest)
    if ":" in joined:
        name_part, _, type_part = joined.partition(":")
        name = name_part.strip()
        primitive = type_part.strip() or "C"
    else:
        name = joined.strip()
        primitive = "C"
    if not name:
        raise DslSyntaxError("attr needs a name", number)
    if primitive not in {"I", "R", "C", "B"}:
        raise DslSyntaxError(
            f"attr type must be one of I R C B, got {primitive!r}", number
        )
    schema.add_attribute(source, name, primitive)


def schema_to_dsl(schema: Schema) -> str:
    """Render a schema back to DSL text (best effort, lossless for
    schemas expressible in the DSL — i.e. whose inverses are paired)."""
    out: list[str] = [f"schema {schema.name}", ""]
    emitted: set[tuple[str, str]] = set()
    for cls in schema.classes(include_primitives=False):
        out.append(f"class {cls.name}")
        for rel in schema.relationships_from(cls.name):
            if rel.key in emitted:
                continue
            if schema.get_class(rel.target).primitive:
                suffix = "" if rel.target == "C" else f" : {rel.target}"
                out.append(f"    attr {rel.name}{suffix}")
                emitted.add(rel.key)
                continue
            keyword = {
                RelationshipKind.ISA: "isa",
                RelationshipKind.MAY_BE: None,  # rendered from the Isa side
                RelationshipKind.HAS_PART: "haspart",
                RelationshipKind.IS_PART_OF: None,  # from the Has-Part side
                RelationshipKind.IS_ASSOCIATED_WITH: "assoc",
            }[rel.kind]
            if keyword is None:
                continue
            line = f"    {keyword} {rel.target}"
            if not rel.has_default_name:
                line += f" as {rel.name}"
            inverse = next(
                (
                    other
                    for other in schema.relationships_from(rel.target)
                    if other.is_inverse_of(rel) and other.key not in emitted
                ),
                None,
            )
            if inverse is not None:
                if inverse.name != rel.source:
                    line += f" inverse {inverse.name}"
                emitted.add(inverse.key)
            out.append(line)
            emitted.add(rel.key)
        out.append("")
    return "\n".join(out)
