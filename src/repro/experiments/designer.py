"""A scripted designer session: interleaved schema edits and queries.

The paper frames disambiguation as a conversation (Figure 1); this module
scripts the *other* conversation schema designers actually have — evolving
the schema while probing it with queries.  The session grows a greenhouse
trial module onto the CUPID schema one edit at a time, re-asking the
figure-workload queries between edits:

* module-building edits (new classes, edges among new classes) leave the
  old query results untouched, so the incremental path carries the
  completion cache across them;
* wiring edits (edges out of pre-existing classes) can change results and
  surgically evict only the completions whose support set meets the edit;
* a mistake is made and reverted (``SchemaDelta.invert``), and a leftover
  is removed with a cascade.

Running the same script in both delta modes (``incremental`` vs
``rebuild``) isolates the value of incremental closure maintenance plus
surgical cache invalidation against recompiling from scratch after every
edit: the edits themselves get cheaper, and the queries after each edit
stay warm instead of going cold.  ``benchmarks/bench_delta.py`` asserts
the speedup; :func:`render_designer_session` reports one run.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Callable, Sequence

from repro.core.engine import Disambiguator
from repro.experiments.reporting import table
from repro.model.delta import (
    AddClass,
    AddInheritanceEdge,
    AddRelationship,
    RemoveClass,
    RemoveRelationship,
    SchemaDelta,
    relationship_pair,
)
from repro.model.kinds import RelationshipKind
from repro.model.relationships import Relationship
from repro.model.schema import Schema
from repro.schemas.cupid import build_cupid_schema

__all__ = [
    "DesignerStep",
    "DesignerSessionResult",
    "cupid_designer_script",
    "run_designer_session",
    "render_designer_session",
]


@dataclasses.dataclass(frozen=True)
class DesignerStep:
    """One recorded step of a designer session.

    ``kind`` is ``"edit"`` or ``"query"``; ``detail`` is the candidate
    count for queries and the command count for edits; ``cached`` is True
    for queries answered from the completion cache.
    """

    index: int
    kind: str
    description: str
    seconds: float
    detail: int = 0
    cached: bool = False


@dataclasses.dataclass(frozen=True)
class DesignerSessionResult:
    """Timings and outcomes of one scripted session run."""

    mode: str
    steps: tuple[DesignerStep, ...]
    final_fingerprint: str

    @property
    def edit_seconds(self) -> float:
        return sum(s.seconds for s in self.steps if s.kind == "edit")

    @property
    def query_seconds(self) -> float:
        return sum(s.seconds for s in self.steps if s.kind == "query")

    @property
    def total_seconds(self) -> float:
        return self.edit_seconds + self.query_seconds

    @property
    def edit_count(self) -> int:
        return sum(1 for s in self.steps if s.kind == "edit")

    @property
    def query_count(self) -> int:
        return sum(1 for s in self.steps if s.kind == "query")

    @property
    def cache_hits(self) -> int:
        return sum(1 for s in self.steps if s.kind == "query" and s.cached)


def _pair(
    source: str, target: str, kind: RelationshipKind, name: str
) -> Callable[[Schema], SchemaDelta]:
    return lambda schema: relationship_pair(source, target, kind, name=name)


def _attr(
    source: str, name: str, primitive: str = "C"
) -> Callable[[Schema], SchemaDelta]:
    return lambda schema: SchemaDelta.of(
        AddRelationship(
            Relationship(
                source,
                primitive,
                RelationshipKind.IS_ASSOCIATED_WITH,
                name=name,
            )
        )
    )


def _remove_pair(source: str, name: str) -> Callable[[Schema], SchemaDelta]:
    """Remove the relationship ``(source, name)`` and its installed inverse."""

    def build(schema: Schema) -> SchemaDelta:
        forward = next(
            rel
            for rel in schema.relationships_from(source)
            if rel.name == name
        )
        inverse = next(
            (
                rel
                for rel in schema.relationships_from(forward.target)
                if rel.name == source and rel.target == source
            ),
            None,
        )
        commands = [RemoveRelationship(forward)]
        if inverse is not None:
            commands.append(RemoveRelationship(inverse))
        return SchemaDelta.of(*commands)

    return build


def _cascade_remove_class(name: str) -> Callable[[Schema], SchemaDelta]:
    def build(schema: Schema) -> SchemaDelta:
        removals = [
            RemoveRelationship(rel)
            for rel in schema.relationships()
            if name in (rel.source, rel.target)
        ]
        doc = schema.get_class(name).doc
        return SchemaDelta.of(*removals, RemoveClass(name, doc=doc))

    return build


# A designer-session step is a query text, or an (edit description,
# delta factory) pair — the factory sees the *current* schema so
# removals can capture the live relationship objects.


#: The validation sweep the designer re-runs after every edit — five of
#: the figure-workload queries.  The sweep is where the two delta modes
#: diverge: after a module-local edit the incremental path serves all
#: five from the carried completion cache, while rebuild-per-edit starts
#: from an empty cache every time.
VALIDATION_SWEEP = (
    "experiment ~ conductance",
    "scientist ~ lai",
    "simulation ~ value",
    "crop ~ depth",
    "soil_layer ~ amount",
)


def cupid_designer_script() -> list:
    """The scripted session: grow a greenhouse-trial module onto CUPID.

    The shape mirrors how schemas are actually grown: the module is
    built class-by-class *in isolation* (every edit's eviction frontier
    is module-local, so the validation sweep stays warm), a mistake is
    made and reverted, and only at the very end is the module wired into
    the pre-existing schema — the one edit whose frontier reaches the
    old classes and legitimately invalidates the sweep.
    """
    assoc = RelationshipKind.IS_ASSOCIATED_WITH
    has_part = RelationshipKind.HAS_PART
    module_edits = [
        ("add class greenhouse", lambda s: SchemaDelta.of(AddClass("greenhouse"))),
        ("add class trial_plot", lambda s: SchemaDelta.of(AddClass("trial_plot"))),
        (
            "greenhouse $>plots -> trial_plot",
            _pair("greenhouse", "trial_plot", has_part, "plots"),
        ),
        ("greenhouse .label -> C", _attr("greenhouse", "label", "C")),
        ("trial_plot .area -> R", _attr("trial_plot", "area", "R")),
        ("add class sensor", lambda s: SchemaDelta.of(AddClass("sensor"))),
        (
            "trial_plot $>sensors -> sensor",
            _pair("trial_plot", "sensor", has_part, "sensors"),
        ),
        ("sensor .reading -> R", _attr("sensor", "reading", "R")),
        ("sensor .serial -> C", _attr("sensor", "serial", "C")),
        ("greenhouse .location -> C", _attr("greenhouse", "location", "C")),
        ("trial_plot .row_count -> I", _attr("trial_plot", "row_count", "I")),
        # The designer mislabels the sensor edge, reverts it, renames it.
        ("remove trial_plot $>sensors", _remove_pair("trial_plot", "sensors")),
        (
            "trial_plot $>instruments -> sensor",
            _pair("trial_plot", "sensor", has_part, "instruments"),
        ),
        # A taxonomy refinement, then the leftover class torn back out.
        (
            "add class instrument_type",
            lambda s: SchemaDelta.of(AddClass("instrument_type")),
        ),
        (
            "sensor @> instrument_type",
            lambda s: SchemaDelta.of(
                AddInheritanceEdge("sensor", "instrument_type")
            ),
        ),
        (
            "remove class instrument_type (cascade)",
            _cascade_remove_class("instrument_type"),
        ),
    ]
    script: list = list(VALIDATION_SWEEP)
    for edit in module_edits:
        script.append(edit)
        script.extend(VALIDATION_SWEEP)
    # Wiring: an edge out of the pre-existing ``experiment`` class.  Its
    # frontier meets the support set of every cached completion on the
    # strongly connected CUPID core, so both modes go cold here — the
    # designer now asks about the freshly connected module.
    script.append(
        (
            "greenhouse .experiments -> experiment",
            _pair("greenhouse", "experiment", assoc, "experiments"),
        )
    )
    script.append("greenhouse ~ conductance")
    return script


def run_designer_session(
    mode: str = "incremental",
    e: int = 2,
    schema: Schema | None = None,
    script: Sequence | None = None,
) -> DesignerSessionResult:
    """Run the scripted session once in the given delta mode.

    ``rebuild`` recompiles the artifact from scratch after every edit
    (the pre-delta workflow); ``incremental`` repairs the closure and
    carries the surviving completion cache.  Both end at the same final
    schema, and the per-query results are byte-identical (the fuzz suite
    asserts this); only the timings differ.
    """
    base = schema if schema is not None else build_cupid_schema()
    steps = list(script) if script is not None else cupid_designer_script()
    engine = Disambiguator(base, e=e)
    records: list[DesignerStep] = []
    for index, step in enumerate(steps):
        if isinstance(step, str):
            before = engine.compiled.cache_info()["hits"]
            started = time.perf_counter()
            completion = engine.complete(step)
            elapsed = time.perf_counter() - started
            records.append(
                DesignerStep(
                    index=index,
                    kind="query",
                    description=step,
                    seconds=elapsed,
                    detail=len(completion.paths),
                    cached=engine.compiled.cache_info()["hits"] > before,
                )
            )
        else:
            description, factory = step
            delta = factory(engine.schema)
            started = time.perf_counter()
            engine = engine.evolved(delta, mode=mode)
            elapsed = time.perf_counter() - started
            records.append(
                DesignerStep(
                    index=index,
                    kind="edit",
                    description=description,
                    seconds=elapsed,
                    detail=len(delta),
                )
            )
    return DesignerSessionResult(
        mode=mode,
        steps=tuple(records),
        final_fingerprint=engine.schema.fingerprint(),
    )


def compare_designer_modes(
    e: int = 2,
    schema: Schema | None = None,
    script: Sequence | None = None,
) -> tuple[DesignerSessionResult, DesignerSessionResult]:
    """Run the session once per mode from equally cold state.

    Evolved artifacts register themselves in the module registry and the
    closure content cache, so whichever mode ran first would hand the
    second mode warm closures and completion caches and corrupt the
    comparison.  Both global caches are cleared before each run (a side
    effect — callers relying on registry warmth must recompile after).
    Returns ``(incremental, rebuild)``.
    """
    from repro.core.closure import SchemaClosure
    from repro.core.compiled import invalidate

    results = {}
    for mode in ("rebuild", "incremental"):
        SchemaClosure.clear_cache()
        invalidate()
        results[mode] = run_designer_session(
            mode=mode, e=e, schema=schema, script=script
        )
    return results["incremental"], results["rebuild"]


def render_designer_session(
    incremental: DesignerSessionResult,
    rebuild: DesignerSessionResult | None = None,
) -> str:
    """Readable report of a session run (optionally vs the rebuild run)."""
    rows = [
        (
            step.index,
            step.kind,
            step.description,
            f"{step.seconds * 1000:.2f}",
            "hit" if step.cached else ("" if step.kind == "edit" else "miss"),
        )
        for step in incremental.steps
    ]
    lines = [table(["#", "kind", "step", "ms", "cache"], rows)]
    lines.append(
        f"\n[{incremental.mode}] {incremental.edit_count} edits in "
        f"{incremental.edit_seconds * 1000:.1f}ms, "
        f"{incremental.query_count} queries in "
        f"{incremental.query_seconds * 1000:.1f}ms "
        f"({incremental.cache_hits} served from cache); "
        f"final fingerprint {incremental.final_fingerprint[:12]}"
    )
    if rebuild is not None:
        ratio = (
            rebuild.total_seconds / incremental.total_seconds
            if incremental.total_seconds > 0
            else float("inf")
        )
        lines.append(
            f"[{rebuild.mode}]     {rebuild.edit_count} edits in "
            f"{rebuild.edit_seconds * 1000:.1f}ms, "
            f"{rebuild.query_count} queries in "
            f"{rebuild.query_seconds * 1000:.1f}ms "
            f"({rebuild.cache_hits} served from cache)"
        )
        lines.append(
            f"session speedup (rebuild / incremental): {ratio:.1f}x"
        )
        if rebuild.final_fingerprint != incremental.final_fingerprint:
            lines.append(
                "!! final fingerprints diverge: "
                f"{incremental.final_fingerprint[:12]} vs "
                f"{rebuild.final_fingerprint[:12]}"
            )
    return "\n".join(lines)
