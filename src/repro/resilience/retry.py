"""Jittered exponential backoff for transient failures.

The serving tier introduces two places where *retrying* is the correct
resilience move, as opposed to the budget/anytime machinery (which
bounds one attempt) or fault injection (which creates the failures):

* the bundled HTTP client — a shed request (429 + ``Retry-After``) or a
  draining server (503) is an explicit invitation to come back later,
  and connection resets during a server restart are transient by
  definition;
* cache prewarming — a warming run racing a flaky backend (chaos tests
  inject :class:`~repro.errors.InjectedFaultError` mid-traversal)
  should try again rather than give up the warm entry.

:class:`RetryPolicy` is an immutable specification in the style of
:class:`~repro.resilience.budget.Budget`: attempts, exponential base
delay with a cap, and a jitter fraction drawn from a seedable RNG so
tests are deterministic.  Jitter matters under load shedding — if every
shed client retried after exactly the same backoff, the server would
see the original thundering herd again, merely phase-shifted.

The ``sleep`` and ``rng`` hooks are injectable (tests pass a recording
fake and a seeded ``random.Random``), and a retried exception can carry
server guidance: when the callable raises an exception with a numeric
``retry_after`` attribute (the client maps the HTTP header onto it),
that value replaces the computed backoff for the next attempt — the
server knows its queue better than the client's exponential curve does.
"""

from __future__ import annotations

import dataclasses
import random
import time
from collections.abc import Callable, Iterator

from repro.errors import ReproError

__all__ = ["RetryExhaustedError", "RetryPolicy"]


class RetryExhaustedError(ReproError):
    """Every attempt allowed by a :class:`RetryPolicy` failed.

    ``attempts`` is how many times the callable ran; ``last`` is the
    exception the final attempt raised (also the ``__cause__``).

    ``response``/``status``/``retry_after`` are the structured surface
    for callers that retried against a server: they default to ``None``
    and the raiser (the serving tier's client) fills them in with the
    last *server* answer seen across the attempts — a transport error
    on the final attempt must not erase the ``Retry-After`` guidance an
    earlier shed response carried.
    """

    response = None
    status: int | None = None
    retry_after: float | None = None

    def __init__(self, attempts: int, last: BaseException) -> None:
        super().__init__(
            f"gave up after {attempts} attempt(s): "
            f"{type(last).__name__}: {last}"
        )
        self.attempts = attempts
        self.last = last


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """An immutable retry specification with jittered exponential backoff.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first one (``1`` disables retries).
    base_delay:
        Backoff before the first retry, in seconds.
    multiplier:
        Exponential growth factor between retries.
    max_delay:
        Cap on one computed backoff (before jitter).
    jitter:
        Fraction of the backoff randomized: the actual sleep is drawn
        uniformly from ``[delay * (1 - jitter), delay * (1 + jitter)]``.
        ``0`` makes backoff deterministic even without a seeded RNG.
    seed:
        When set, jitter is drawn from ``random.Random(seed)`` — used
        by tests; production leaves it ``None`` for process-global
        randomness (distinct clients must not jitter in lockstep).
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier!r}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter!r}")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A single-attempt policy (retries disabled)."""
        return cls(max_attempts=1)

    def backoff(self, retry_index: int) -> float:
        """The un-jittered backoff before retry ``retry_index`` (0-based)."""
        return min(self.max_delay, self.base_delay * self.multiplier**retry_index)

    def delays(self, rng: random.Random | None = None) -> Iterator[float]:
        """The jittered sleep sequence (``max_attempts - 1`` values)."""
        rng = rng if rng is not None else self._default_rng()
        for index in range(self.max_attempts - 1):
            delay = self.backoff(index)
            if self.jitter:
                delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield max(0.0, delay)

    def _default_rng(self) -> random.Random:
        if self.seed is not None:
            return random.Random(self.seed)
        return random.Random()

    def call(
        self,
        fn: Callable[[], object],
        retry_on: tuple[type[BaseException], ...] = (ReproError, OSError),
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
        on_retry: Callable[[int, BaseException, float], None] | None = None,
    ):
        """Run ``fn`` until it succeeds or the attempts run out.

        Only exceptions matching ``retry_on`` are retried; anything else
        propagates immediately (a malformed request is not transient).
        When a retried exception carries a non-negative numeric
        ``retry_after`` attribute, that value overrides the computed
        backoff for the following sleep.  After the final failure a
        :class:`RetryExhaustedError` is raised from the last exception.

        ``on_retry(attempt_index, error, delay)`` is called before each
        sleep — the client uses it to count retries into the metrics
        registry, tests use it to record the schedule.
        """
        delays = self.delays(rng)
        last: BaseException | None = None
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except retry_on as error:  # type: ignore[misc]
                last = error
                try:
                    delay = next(delays)
                except StopIteration:
                    break
                hinted = getattr(error, "retry_after", None)
                if isinstance(hinted, (int, float)) and hinted >= 0:
                    delay = float(hinted)
                if on_retry is not None:
                    on_retry(attempt, error, delay)
                if delay > 0:
                    sleep(delay)
        assert last is not None
        raise RetryExhaustedError(self.max_attempts, last) from last
