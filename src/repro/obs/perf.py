"""Benchmark history and continuous perf-regression gating.

One honest benchmark run proves little: machines differ, CI hosts are
noisy, and a 2x slowdown introduced on Tuesday is invisible by Friday
if nobody kept Tuesday's numbers.  This module keeps them:

* benchmarks append :class:`BenchRecord` rows — name, measured value,
  unit, a run id shared by every record of one invocation, a wall-clock
  stamp, and an environment fingerprint (Python version/implementation,
  platform, machine, CPU count) — to a ``BENCH_history.jsonl`` ledger
  via :func:`append_records`;
* ``python -m repro.obs.perf compare`` groups the ledger by run id,
  takes the *median of prior runs* as the per-benchmark baseline (the
  median absorbs one-off CI hiccups that a mean would average in), and
  fails (exit 1) when the latest run is slower than baseline by more
  than the noise tolerance (default 25%).

The first run of a fresh ledger has no baseline, so ``compare`` warns
and passes — CI can enable the gate unconditionally and it arms itself
once history exists.  Records from a *different environment fingerprint*
than the latest run are excluded from the baseline: comparing a laptop
against a CI container is noise, not signal.

Every row is validated against ``bench_record.schema.json`` on both
write and read, so the ledger cannot drift silently.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.schema import validate_bench_records

__all__ = [
    "BenchRecord",
    "CompareResult",
    "append_records",
    "compare",
    "environment_fingerprint",
    "load_history",
    "main",
    "new_run_id",
]

#: Baseline window: at most this many prior runs feed the median.
BASELINE_WINDOW = 20

#: Default slowdown tolerance (fraction above baseline that still passes).
DEFAULT_TOLERANCE = 0.25


def environment_fingerprint() -> dict:
    """The environment facts that make benchmark numbers comparable."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def new_run_id() -> str:
    """A fresh run id shared by every record of one benchmark invocation."""
    return uuid.uuid4().hex[:12]


@dataclass
class BenchRecord:
    """One measured benchmark value, ready for the history ledger."""

    name: str
    value: float
    unit: str = "seconds"
    run: str = field(default_factory=new_run_id)
    recorded_unix: float = field(default_factory=time.time)
    env: dict = field(default_factory=environment_fingerprint)
    extra: dict = field(default_factory=dict)

    def to_record(self) -> dict:
        record = {
            "name": self.name,
            "value": self.value,
            "unit": self.unit,
            "run": self.run,
            "recorded_unix": self.recorded_unix,
            "env": self.env,
        }
        if self.extra:
            record["extra"] = self.extra
        return record

    @classmethod
    def from_record(cls, record: dict) -> "BenchRecord":
        return cls(
            name=record["name"],
            value=record["value"],
            unit=record["unit"],
            run=record["run"],
            recorded_unix=record["recorded_unix"],
            env=record["env"],
            extra=record.get("extra", {}),
        )


def append_records(
    path: str | Path, records: list[BenchRecord | dict]
) -> int:
    """Validate and append rows to the history ledger; returns the count."""
    rows = [
        record.to_record() if isinstance(record, BenchRecord) else record
        for record in records
    ]
    validate_bench_records(rows)
    with open(path, "a", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
    return len(rows)


def load_history(path: str | Path) -> list[BenchRecord]:
    """Read and validate the ledger (missing file = empty history)."""
    path = Path(path)
    if not path.exists():
        return []
    rows = [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]
    validate_bench_records(rows)
    return [BenchRecord.from_record(row) for row in rows]


@dataclass
class BenchVerdict:
    """The comparison outcome for one benchmark name."""

    name: str
    latest: float
    baseline: float | None
    ratio: float | None
    unit: str
    regressed: bool
    prior_runs: int

    def describe(self, tolerance: float) -> str:
        if self.baseline is None:
            return (
                f"  ~ {self.name}: {self.latest:.6g} {self.unit} "
                f"(no baseline yet — recorded, not gated)"
            )
        mark = "FAIL" if self.regressed else "ok"
        return (
            f"  {mark:>4} {self.name}: {self.latest:.6g} {self.unit} "
            f"vs baseline {self.baseline:.6g} "
            f"(x{self.ratio:.2f}, median of {self.prior_runs} prior run(s), "
            f"tolerance x{1 + tolerance:.2f})"
        )


@dataclass
class CompareResult:
    """Aggregate verdict for the latest run against history."""

    run: str
    verdicts: list[BenchVerdict]
    tolerance: float

    @property
    def regressions(self) -> list[BenchVerdict]:
        return [verdict for verdict in self.verdicts if verdict.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"perf compare: run {self.run} "
            f"({len(self.verdicts)} benchmark(s), "
            f"tolerance {self.tolerance:.0%})"
        ]
        lines.extend(
            verdict.describe(self.tolerance) for verdict in self.verdicts
        )
        if self.regressions:
            lines.append(
                f"REGRESSION: {len(self.regressions)} benchmark(s) exceeded "
                f"the {self.tolerance:.0%} tolerance"
            )
        else:
            lines.append("no regressions detected")
        return "\n".join(lines)


def _run_order(history: list[BenchRecord]) -> list[str]:
    """Run ids in first-appearance order (the ledger is append-only)."""
    order: list[str] = []
    seen: set[str] = set()
    for record in history:
        if record.run not in seen:
            seen.add(record.run)
            order.append(record.run)
    return order


def compare(
    history: list[BenchRecord],
    tolerance: float = DEFAULT_TOLERANCE,
    run: str | None = None,
) -> CompareResult:
    """Gate the latest run (or ``run``) against the rolling baseline.

    The baseline per benchmark name is the median of that benchmark's
    values over the last :data:`BASELINE_WINDOW` prior runs with the
    same environment fingerprint.  A benchmark with no usable baseline
    (first run, new benchmark, or environment change) is reported but
    never fails the gate.
    """
    if not history:
        return CompareResult(run="(empty history)", verdicts=[], tolerance=tolerance)
    order = _run_order(history)
    latest_run = run if run is not None else order[-1]
    if latest_run not in order:
        raise ValueError(f"run {latest_run!r} not present in history")
    prior_runs = order[: order.index(latest_run)]

    by_run: dict[str, dict[str, BenchRecord]] = {}
    for record in history:
        by_run.setdefault(record.run, {})[record.name] = record

    latest = by_run[latest_run]
    verdicts: list[BenchVerdict] = []
    for name in sorted(latest):
        record = latest[name]
        samples = [
            by_run[prior][name].value
            for prior in prior_runs[-BASELINE_WINDOW:]
            if name in by_run[prior]
            and by_run[prior][name].env == record.env
        ]
        if not samples:
            verdicts.append(
                BenchVerdict(
                    name=name,
                    latest=record.value,
                    baseline=None,
                    ratio=None,
                    unit=record.unit,
                    regressed=False,
                    prior_runs=0,
                )
            )
            continue
        baseline = statistics.median(samples)
        ratio = record.value / baseline if baseline > 0 else float("inf")
        verdicts.append(
            BenchVerdict(
                name=name,
                latest=record.value,
                baseline=baseline,
                ratio=ratio,
                unit=record.unit,
                regressed=baseline > 0 and ratio > 1.0 + tolerance,
                prior_runs=len(samples),
            )
        )
    return CompareResult(run=latest_run, verdicts=verdicts, tolerance=tolerance)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.perf`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.perf",
        description="benchmark-history tools (continuous perf gating)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cmd_compare = sub.add_parser(
        "compare", help="gate the latest run against the rolling baseline"
    )
    cmd_compare.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        metavar="FILE",
        help="history ledger (default BENCH_history.jsonl)",
    )
    cmd_compare.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        metavar="FRACTION",
        help=f"allowed slowdown fraction (default {DEFAULT_TOLERANCE})",
    )
    cmd_compare.add_argument(
        "--run",
        default=None,
        metavar="ID",
        help="run id to gate (default: last run in the ledger)",
    )

    cmd_show = sub.add_parser("show", help="print the ledger grouped by run")
    cmd_show.add_argument(
        "--history", default="BENCH_history.jsonl", metavar="FILE"
    )

    args = parser.parse_args(argv)
    history = load_history(args.history)

    if args.command == "show":
        if not history:
            print(f"{args.history}: empty history")
            return 0
        by_run: dict[str, list[BenchRecord]] = {}
        for record in history:
            by_run.setdefault(record.run, []).append(record)
        for run_id in _run_order(history):
            records = by_run[run_id]
            stamp = time.strftime(
                "%Y-%m-%d %H:%M:%S",
                time.gmtime(min(r.recorded_unix for r in records)),
            )
            print(f"run {run_id} ({stamp} UTC, {len(records)} record(s))")
            for record in sorted(records, key=lambda r: r.name):
                print(f"  {record.name}: {record.value:.6g} {record.unit}")
        return 0

    if not history:
        print(
            f"perf compare: {args.history} has no history yet — "
            "nothing to gate (pass)"
        )
        return 0
    result = compare(history, tolerance=args.tolerance, run=args.run)
    print(result.render())
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
