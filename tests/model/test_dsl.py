"""Tests for the schema text DSL."""

import pytest

from repro.errors import DslSyntaxError
from repro.model.dsl import parse_schema_dsl, schema_to_dsl
from repro.model.kinds import RelationshipKind

EXAMPLE = """
# the Figure 2 core, in DSL form
schema mini-university

class person
    attr name
    attr ssn : I

class student isa person
    assoc course as take inverse student

class course
    attr name

class department
    haspart professor inverse department

class professor
"""


class TestParsing:
    def test_schema_name(self):
        schema = parse_schema_dsl(EXAMPLE)
        assert schema.name == "mini-university"

    def test_classes(self):
        schema = parse_schema_dsl(EXAMPLE)
        for name in ("person", "student", "course", "department", "professor"):
            assert schema.has_class(name)

    def test_header_isa_clause(self):
        schema = parse_schema_dsl(EXAMPLE)
        rel = schema.get_relationship("student", "person")
        assert rel.kind is RelationshipKind.ISA
        assert schema.get_relationship("person", "student").kind is (
            RelationshipKind.MAY_BE
        )

    def test_assoc_with_names(self):
        schema = parse_schema_dsl(EXAMPLE)
        assert schema.get_relationship("student", "take").target == "course"
        assert schema.get_relationship("course", "student").target == "student"

    def test_attributes(self):
        schema = parse_schema_dsl(EXAMPLE)
        assert schema.get_relationship("person", "ssn").target == "I"
        assert schema.get_relationship("person", "name").target == "C"

    def test_haspart_with_inverse_name(self):
        schema = parse_schema_dsl(EXAMPLE)
        assert (
            schema.get_relationship("professor", "department").kind
            is RelationshipKind.IS_PART_OF
        )

    def test_forward_references_work(self):
        text = "class a\n    assoc b\nclass b\n"
        schema = parse_schema_dsl(text)
        assert schema.has_relationship("a", "b")

    def test_comments_and_blank_lines_ignored(self):
        text = "# comment\n\nclass a  # trailing\n"
        schema = parse_schema_dsl(text)
        assert schema.has_class("a")

    def test_multiple_superclasses_in_header(self):
        text = "class grad\nclass instructor\nclass ta isa grad instructor\n"
        schema = parse_schema_dsl(text)
        assert set(schema.isa_parents("ta")) == {"grad", "instructor"}


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "attr name\n",                 # body before any class
            "class a\n    frobnicate b\n",  # unknown keyword
            "class a\n    isa\n",           # missing target (after class a)
            "class a\n    assoc b extra\n",  # stray token
            "class a\n    attr x : Q\n",    # bad attr type
            "schema\n",                     # schema without name
            "class a isa\n",                # header isa without superclass
        ],
    )
    def test_bad_input_raises_with_line_number(self, text):
        with pytest.raises(DslSyntaxError) as excinfo:
            parse_schema_dsl(text)
        assert excinfo.value.line >= 1

    def test_unknown_target_class(self):
        with pytest.raises(DslSyntaxError):
            parse_schema_dsl("class a\n    haspart ghost\n")


class TestRoundTrip:
    def test_dsl_round_trip_preserves_structure(self):
        schema = parse_schema_dsl(EXAMPLE)
        regenerated = parse_schema_dsl(schema_to_dsl(schema))
        assert sorted(
            (r.source, r.name, r.target, r.kind.symbol)
            for r in regenerated.relationships()
        ) == sorted(
            (r.source, r.name, r.target, r.kind.symbol)
            for r in schema.relationships()
        )

    def test_university_survives_dsl_round_trip(self, university):
        regenerated = parse_schema_dsl(schema_to_dsl(university))
        assert sorted(
            (r.source, r.name, r.target, r.kind.symbol)
            for r in regenerated.relationships()
        ) == sorted(
            (r.source, r.name, r.target, r.kind.symbol)
            for r in university.relationships()
        )
