"""Bench PR10 — the flat search kernel and process-pool sharded batches.

Two acceptance contracts over the cold CUPID E=3 workload (the same ten
queries ``bench_closure.py`` uses, unrestricted schema):

* the ``kernel="flat"`` integer-indexed expansion loop is at least
  **1.5x** faster than the ``kernel="interpreted"`` reference on the
  steady-state cold pass (completion cache cleared, per-target tables
  warm — a long-lived process pays the table builds once ever, and
  bench_closure asserts those cheap separately), with byte-identical
  ranked paths, labels, and traversal counters for every query (it is
  a specialization, not an approximation);
* ``complete_batch(jobs=4, executor="process")`` is at least **2x**
  faster than the sequential pass on machines with 3+ cores.  On two
  cores 2x is the zero-overhead theoretical ceiling, so the bar there
  is a 1.35x floor (fork + per-worker compile are real costs the
  ledger keeps visible); on one core the comparison is *skipped, not
  faked* — a process pool cannot beat sequential without parallel
  hardware, and pretending otherwise would poison the ledger baseline.

Timings land in ``BENCH_kernel.json`` at the repo root and in the
``BENCH_history.jsonl`` perf ledger (gated by
``python -m repro.obs.perf compare`` in CI).  ``BENCH_QUICK=1`` keeps
E=3 (the contract is about the cold hot-path, quick mode cannot water
it down) but drops the repetition count.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

import pytest

from benchmarks.conftest import emit, record_bench
from repro.core import compiled as compiled_registry
from repro.core.compiled import CompiledSchema
from repro.core.engine import Disambiguator

_ROOT = pathlib.Path(__file__).parent.parent
_RESULT_FILE = _ROOT / "BENCH_kernel.json"

QUICK = os.environ.get("BENCH_QUICK") == "1"
E = 3
#: Required cold speedup of the flat kernel over the interpreted loop.
MIN_KERNEL_SPEEDUP = 1.5
#: Required process-pool speedup over sequential, by available cores.
#: 2x needs at least 3 cores to be a fair bar (on 2 cores it is the
#: zero-overhead ceiling); 2-core machines get a floor that still
#: proves genuine overlap.  One core skips — see the module docstring.
MIN_PROCESS_SPEEDUP_3PLUS = 2.0
MIN_PROCESS_SPEEDUP_2 = 1.35
#: Cold passes per timed variant; the minimum is reported (standard
#: practice for CPU-bound microbenchmarks — the min is the least-noisy
#: estimate of the true cost).
REPEATS = 2 if QUICK else 3


def _snapshots(batch) -> list[tuple]:
    """Everything a caller can observe about each ranked result."""
    return [
        (
            tuple(str(path) for path in result.paths),
            tuple(str(label) for label in result.labels),
            tuple(str(label.semantic_length) for label in result.labels),
            result.exhausted,
            result.truncation_reason,
        )
        for result in batch.results
    ]


def _stats(batch) -> list[tuple]:
    """The hardware-independent traversal counters per result."""
    return [
        (
            result.stats.recursive_calls,
            result.stats.edges_considered,
            result.stats.complete_paths_found,
            result.stats.pruned_visited,
            result.stats.pruned_target_bound,
            result.stats.pruned_best_bound,
            result.stats.rescued_by_caution,
            result.stats.nodes_pruned_reachability,
            result.stats.nodes_pruned_bound,
        )
        for result in batch.results
    ]


def _cold_pass(schema, texts, kernel=None, jobs=1, executor=None):
    """One genuinely cold batch: fresh artifact, empty completion cache.

    With ``executor="process"`` the compile registry is cleared first so
    forked workers cannot inherit a warm artifact.
    """
    if executor == "process":
        compiled_registry.invalidate()
    engine = Disambiguator(CompiledSchema(schema), e=E, kernel=kernel)
    start = time.perf_counter()
    batch = engine.complete_batch(texts, jobs=jobs, executor=executor)
    seconds = time.perf_counter() - start
    return batch, seconds


def _steady_cold_passes(schema, texts, kernel):
    """Cold completions against warm per-target tables, best of REPEATS.

    One artifact per kernel; a throwaway first pass builds the closure
    tables (and the flat kernel's derived tables) exactly as a
    long-lived serving process would, then each timed pass clears the
    completion cache so every query's *search* runs cold.  This is the
    steady-state cold cost — the same first-touch/steady split
    ``bench_closure.py`` uses for its ledger series — and it is the
    regime the kernel contract is about: the expansion loop, not the
    once-per-process table builds (those are asserted cheap in
    bench_closure).
    """
    engine = Disambiguator(CompiledSchema(schema), e=E, kernel=kernel)
    batch = engine.complete_batch(texts)  # warm tables, throwaway timing
    best = None
    for _ in range(REPEATS):
        engine.compiled.cache.clear()
        start = time.perf_counter()
        batch = engine.complete_batch(texts)
        seconds = time.perf_counter() - start
        best = seconds if best is None else min(best, seconds)
    return batch, best


def _best_of(repeats, run):
    """The fastest pass and its batch (first batch kept for snapshots)."""
    batch, best = run()
    for _ in range(repeats - 1):
        _, seconds = run()
        best = min(best, seconds)
    return batch, best


@pytest.mark.benchmark(group="kernel")
def test_flat_kernel_speedup(cupid, oracle):
    texts = [query.text for query in oracle.queries]
    lines = [
        f"workload: {len(texts)} CUPID queries, unrestricted schema, "
        f"E={E}, best of {REPEATS}"
    ]

    interpreted, interp_seconds = _steady_cold_passes(
        cupid, texts, kernel="interpreted"
    )
    flat, flat_seconds = _steady_cold_passes(cupid, texts, kernel="flat")

    # Byte-identity first: ranked paths, labels, semantic lengths, the
    # anytime flags, and every traversal counter.  A fast wrong kernel
    # is worthless.
    assert _snapshots(flat) == _snapshots(interpreted)
    assert _stats(flat) == _stats(interpreted)

    speedup = (
        interp_seconds / flat_seconds if flat_seconds > 0 else float("inf")
    )
    assert speedup >= MIN_KERNEL_SPEEDUP, (
        f"flat kernel {speedup:.2f}x < {MIN_KERNEL_SPEEDUP}x "
        f"({interp_seconds * 1000:.0f}ms -> {flat_seconds * 1000:.0f}ms)"
    )
    record_bench(
        f"kernel.interpreted_seconds_e{E}", interp_seconds, quick=QUICK
    )
    record_bench(f"kernel.flat_seconds_e{E}", flat_seconds, quick=QUICK)
    lines.append(
        f"kernel: interpreted {interp_seconds * 1000:8.1f} ms | flat "
        f"{flat_seconds * 1000:8.1f} ms | {speedup:5.2f}x "
        f"(required >= {MIN_KERNEL_SPEEDUP}x)"
    )

    # ------------------------------------------------------------------
    # Process-pool sharded batch vs sequential.  Skipped — not faked —
    # on one core.
    # ------------------------------------------------------------------
    cores = os.cpu_count() or 1
    sequential, seq_seconds = _best_of(
        REPEATS, lambda: _cold_pass(cupid, texts)
    )
    record_bench(
        f"kernel.batch_seq_seconds_e{E}", seq_seconds, quick=QUICK
    )
    process_point = None
    if cores >= 2:
        process, proc_seconds = _best_of(
            REPEATS,
            lambda: _cold_pass(cupid, texts, jobs=4, executor="process"),
        )
        assert _snapshots(process) == _snapshots(sequential)
        proc_speedup = (
            seq_seconds / proc_seconds if proc_seconds > 0 else float("inf")
        )
        required = (
            MIN_PROCESS_SPEEDUP_3PLUS if cores >= 3 else MIN_PROCESS_SPEEDUP_2
        )
        assert proc_speedup >= required, (
            f"process jobs=4 {proc_speedup:.2f}x < {required}x on "
            f"{cores} core(s) ({seq_seconds * 1000:.0f}ms -> "
            f"{proc_seconds * 1000:.0f}ms)"
        )
        record_bench(
            f"kernel.batch_process_jobs4_seconds_e{E}",
            proc_seconds,
            quick=QUICK,
            cores=cores,
        )
        lines.append(
            f"batch: sequential {seq_seconds * 1000:8.1f} ms | process "
            f"jobs=4 {proc_seconds * 1000:8.1f} ms | {proc_speedup:5.2f}x "
            f"(required >= {required}x on {cores} cores)"
        )
        process_point = {
            "process_jobs4_seconds": proc_seconds,
            "speedup": proc_speedup,
            "required": required,
        }
    else:
        lines.append(
            f"batch: sequential {seq_seconds * 1000:8.1f} ms | process "
            f"comparison skipped on {cores} core (no parallel hardware "
            f"to measure)"
        )

    record = {
        "schema": "cupid (unrestricted)",
        "quick": QUICK,
        "queries": len(texts),
        "e": E,
        "kernel": {
            "interpreted_seconds": interp_seconds,
            "flat_seconds": flat_seconds,
            "speedup": speedup,
        },
        "batch": {
            "sequential_seconds": seq_seconds,
            "cores": cores,
            **(process_point or {"process_jobs4_seconds": None}),
        },
        "python": platform.python_version(),
    }
    _RESULT_FILE.write_text(json.dumps(record, indent=2) + "\n")
    emit(
        "Flat kernel + process-pool batches: cold CUPID workload",
        "\n".join(lines),
    )
