"""Tests for Algorithm 1 (the traditional path-computation baseline)."""

from repro.core.algorithm1 import traditional_path_computation
from repro.core.completion import complete_paths
from repro.core.target import ClassTarget, RelationshipTarget


class TestLabels:
    def test_finds_the_optimal_label(self, university_graph):
        result = traditional_path_computation(
            university_graph, "ta", RelationshipTarget("name")
        )
        assert [str(label) for label in result.labels] == ["[.,1]"]

    def test_class_target(self, university_graph):
        result = traditional_path_computation(
            university_graph, "ta", ClassTarget("course")
        )
        assert result.labels

    def test_empty_for_unreachable(self, university_graph):
        result = traditional_path_computation(
            university_graph, "ta", RelationshipTarget("ghost")
        )
        assert result.labels == ()


class TestRelationToAlgorithm2:
    def test_label_sets_agree_on_flagship_query(self, university_graph):
        target = RelationshipTarget("name")
        labels1 = {
            label.key
            for label in traditional_path_computation(
                university_graph, "ta", target
            ).labels
        }
        labels2 = {
            label.key
            for label in complete_paths(
                university_graph, "ta", target
            ).labels
        }
        assert labels1 == labels2

    def test_algorithm1_visits_no_more_nodes(self, university_graph):
        """Algorithm 1's stricter (set-change) pruning explores at most
        as much as Algorithm 2's membership-based pruning.

        Pinned to ``pruning="none"``: the comparison is against the
        paper's Algorithm 2, not the closure-guided variant (whose extra
        cut rules can visit fewer nodes than Algorithm 1)."""
        target = RelationshipTarget("name")
        calls1 = traditional_path_computation(
            university_graph, "ta", target
        ).stats.recursive_calls
        calls2 = complete_paths(
            university_graph, "ta", target, pruning="none"
        ).stats.recursive_calls
        assert calls1 <= calls2


class TestStats:
    def test_counters_populated(self, university_graph):
        result = traditional_path_computation(
            university_graph, "ta", RelationshipTarget("name")
        )
        stats = result.stats
        assert stats.recursive_calls > 0
        assert stats.edges_considered > 0
        assert stats.elapsed_seconds >= 0
