"""Ground-truth validation of the multi-~ completion against brute
force on the university schema."""

import itertools

import pytest

from repro.algebra.agg import Aggregator
from repro.core.ast import ConcretePath
from repro.core.multi import complete_general
from repro.core.parser import parse_path_expression
from repro.model.graph import SchemaGraph


def _all_acyclic_paths_matching(graph, expression, max_depth=8):
    """Brute force: every acyclic concrete path matching the pattern
    (explicit steps matched exactly, ~ segments of any length ending
    with the named relationship)."""
    results = []

    def walk(path, step_index, gap_open):
        if step_index == len(expression.steps):
            results.append(path)
            return
        if path.length >= max_depth:
            return
        step = expression.steps[step_index]
        node = path.target_class
        visited = set(path.classes())
        for edge in graph.edges_from(node):
            if edge.target in visited and edge.target != path.root:
                continue
            if edge.target in visited:
                continue
            if step.is_tilde:
                if edge.name == step.name:
                    walk(path.extend(edge), step_index + 1, False)
                walk(path.extend(edge), step_index, True)
            else:
                if (
                    edge.name == step.name
                    and edge.connector is step.connector
                ):
                    walk(path.extend(edge), step_index + 1, False)

    walk(ConcretePath.start(expression.root), 0, False)
    # dedupe (the tilde branch can reach the same completion twice)
    unique = {}
    for path in results:
        unique.setdefault((path.root, path.edges), path)
    return [p for p in unique.values() if p.is_acyclic]


@pytest.mark.parametrize(
    "text",
    [
        "ta~take.name",
        "ta@>grad~name",
        "ta~teach~name",
        "department~ssn",
    ],
)
def test_multi_completion_is_optimal_subset_of_brute_force(
    university, text
):
    graph = SchemaGraph(university)
    expression = parse_path_expression(text)
    result = complete_general(graph, expression, e=1)

    everything = _all_acyclic_paths_matching(graph, expression)
    assert everything, text
    aggregator = Aggregator(e=1)
    optimal_keys = {
        label.key
        for label in aggregator.aggregate([p.label() for p in everything])
    }
    optimal = {
        str(p) for p in everything if p.label().key in optimal_keys
    }
    returned = set(result.expressions)
    # sound subset of the brute-force optimum, and nonempty
    assert returned <= optimal, (text, returned - optimal)
    assert returned
