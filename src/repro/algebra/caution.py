"""Caution sets (paper Section 4.1).

AGG does not distribute over CON (property 6 fails), so the classic
transitive-closure optimization — skip re-exploring a shared subpath when
the new prefix label is no better than an already-seen one — can lose
plausible answers.  The paper's fix: the *caution set* of a label L1 is
the set of labels L2 such that

* L2 is better than L1 (``L2 < L1``), and
* some continuation L3 exists for which ``CON(L1, L3)`` and
  ``CON(L2, L3)`` are incomparable — i.e. extending both by the same
  suffix makes the "loser" L1 produce an answer the winner does not
  subsume.

Algorithm 2's pruning condition then re-explores a node even when the
new label is dominated, whenever the dominating labels intersect the new
label's caution set.

Because comparability is decided primarily on connectors, caution sets
are computed at the connector level by brute force over the closed
alphabet (14^3 = 2744 compositions, done once per partial order and
cached).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.algebra.con_table import con_c
from repro.algebra.connectors import ALL_CONNECTORS, Connector
from repro.algebra.labels import PathLabel
from repro.algebra.order import PartialOrder

__all__ = ["CautionSets", "compute_caution_sets"]


def compute_caution_sets(
    order: PartialOrder,
) -> dict[Connector, frozenset[Connector]]:
    """Brute-force the connector-level caution sets for ``order``.

    ``result[c1]`` contains every connector c2 that is better than c1 but
    whose future compositions can diverge from c1's into incomparability.
    """
    sets: dict[Connector, frozenset[Connector]] = {}
    for c1 in ALL_CONNECTORS:
        dangerous: set[Connector] = set()
        for c2 in ALL_CONNECTORS:
            if not order.better(c2, c1):
                continue
            for c3 in ALL_CONNECTORS:
                extended1 = con_c(c1, c3)
                extended2 = con_c(c2, c3)
                if extended1 is extended2:
                    continue
                if order.incomparable(extended1, extended2):
                    dangerous.add(c2)
                    break
        sets[c1] = frozenset(dangerous)
    return sets


class CautionSets:
    """Cached caution sets plus the intersection test of Algorithm 2.

    The per-order computation is cached by the order's *content key*
    (:meth:`~repro.algebra.order.PartialOrder.content_key`), never by
    ``id(order)``: a CPython id can be reused after the order is
    garbage-collected, which would silently hand one order's caution
    sets to another, and id-keyed entries can never be evicted safely.
    Content keys are stable, so equal orders share one computation and
    the cache stays bounded by the number of *distinct* orders used.

    Parameters
    ----------
    order:
        The better-than partial order the sets are computed against.
    """

    _cache: dict[str, dict[Connector, frozenset[Connector]]] = {}
    _instances: dict[str, "CautionSets"] = {}

    @classmethod
    def for_order(cls, order: PartialOrder) -> "CautionSets":
        """A shared instance for ``order``, keyed by content.

        Caution sets depend only on the partial order, never on the
        schema — so artifacts evolved across schema deltas (and any two
        compiles under equal orders) can share one instance, which also
        shares the lazily built :attr:`masks`.
        """
        key = order.content_key()
        instance = cls._instances.get(key)
        if instance is None:
            instance = cls(order)
            cls._instances[key] = instance
        return instance

    def __init__(self, order: PartialOrder) -> None:
        self.order = order
        key = order.content_key()
        cached = CautionSets._cache.get(key)
        if cached is None:
            cached = compute_caution_sets(order)
            CautionSets._cache[key] = cached
        self._sets = cached
        self._masks: tuple[int, ...] | None = None

    @classmethod
    def clear_cache(cls) -> None:
        """Drop all cached per-order computations (for tests)."""
        cls._cache.clear()
        cls._instances.clear()

    def of(self, connector: Connector) -> frozenset[Connector]:
        """The caution set of a connector."""
        return self._sets[connector]

    @property
    def masks(self) -> tuple[int, ...]:
        """Caution sets as bitmasks over connector indices.

        ``masks[c.index] & (1 << other.index)`` is nonzero exactly when
        ``other`` is in the caution set of ``c`` — the single-AND form of
        :meth:`intersects` used by the closure bound cut's exemption
        test, where building label objects per edge would dominate the
        savings.
        """
        masks = self._masks
        if masks is None:
            masks = [0] * len(ALL_CONNECTORS)
            for connector, dangerous in self._sets.items():
                mask = 0
                for other in dangerous:
                    mask |= 1 << other.index
                masks[connector.index] = mask
            masks = self._masks = tuple(masks)
        return masks

    def of_label(self, label: PathLabel) -> frozenset[Connector]:
        """The caution set of a label (connector-level)."""
        return self._sets[label.connector]

    def intersects(
        self, label: PathLabel, best: Iterable[PathLabel]
    ) -> bool:
        """The ``caution[l_u] ∩ best[u] != ∅`` test of Algorithm 2.

        True when some already-best label at the node lies in the caution
        set of the newly arrived label, meaning the node must be
        re-explored despite the new label being dominated.
        """
        dangerous = self._sets[label.connector]
        if not dangerous:
            return False
        return any(other.connector in dangerous for other in best)

    def nonempty_connectors(self) -> list[Connector]:
        """Connectors with a nonempty caution set (for diagnostics)."""
        return [c for c, s in self._sets.items() if s]

    def __repr__(self) -> str:
        nonempty = len(self.nonempty_connectors())
        return (
            f"CautionSets(order={self.order.name!r}, "
            f"nonempty={nonempty}/{len(self._sets)})"
        )
