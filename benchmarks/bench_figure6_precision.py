"""Bench E2 — regenerates Figure 6 (average precision vs E, with and
without domain knowledge).

Paper: precision 100% at E=1, falling to ~55% at large E without
domain knowledge; ~93% with the excluded auxiliary classes.  Shapes
asserted: perfect at E=1, monotone-ish decline, and a wide DK gap.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.figure6 import render_figure6, run_figure6

E_VALUES = (1, 2, 3, 4)


@pytest.mark.benchmark(group="figure6")
def test_figure6_precision_sweep(benchmark, cupid, oracle, knowledge):
    result = benchmark.pedantic(
        run_figure6,
        args=(cupid, oracle, knowledge),
        kwargs={"e_values": E_VALUES},
        rounds=1,
        iterations=1,
    )
    emit("Figure 6: Average Precision Fraction", render_figure6(result))

    without = [p.average_precision for p in result.without_dk]
    with_dk = [p.average_precision for p in result.with_dk]
    # 100% precision at E=1, both arms (paper's headline)
    assert without[0] == pytest.approx(1.0)
    assert with_dk[0] == pytest.approx(1.0)
    # substantial decline without domain knowledge
    assert without[-1] < 0.6
    # domain knowledge keeps precision far higher at every E > 1
    for no_dk_point, dk_point in zip(without[1:], with_dk[1:]):
        assert dk_point > no_dk_point
    assert with_dk[-1] > without[-1] * 1.5
