"""``repro.obs`` — observability for the disambiguation pipeline.

The paper evaluates the system by *counting work* (Section 5.4:
recursive calls at 0.17 ms each, response time per query, pruning
effectiveness).  This package makes that visible at every layer:

* :mod:`repro.obs.tracer` — nested, timed spans (``parse``,
  ``compile``, ``traverse``, ``agg_select``, ``preemption``, ``rank``,
  ``cache_lookup``) with per-span attributes, a human-readable tree
  dump, and a JSON-lines event log.  The default tracer is a shared
  no-op, so instrumented hot paths pay ~zero cost unless a caller
  installs a :class:`~repro.obs.tracer.RecordingTracer`.
* :mod:`repro.obs.metrics` — a registry of named counters, gauges, and
  histograms that :class:`~repro.core.stats.TraversalStats` feeds into
  (the stats dataclass is a carrier, not the terminal sink).  The
  default registry is likewise a no-op.
* :mod:`repro.obs.schema` — a dependency-free validator for the
  checked-in JSON schemas of the metrics summary and the trace event
  log (``python -m repro.obs.validate FILE ...``), so exported
  artifacts cannot silently drift.

Everything is ambient (:func:`use_tracer` / :func:`use_metrics` install
into a :mod:`contextvars` context), so engines, sessions, fox queries,
and the experiments harness need no extra plumbing parameters.
"""

from repro.obs.metrics import (
    MetricsRegistry,
    NullMetricsRegistry,
    get_metrics,
    use_metrics,
)
from repro.obs.schema import (
    SchemaValidationError,
    load_builtin_schema,
    validate,
    validate_metrics_summary,
    validate_trace_events,
)
from repro.obs.tracer import (
    NullTracer,
    RecordingTracer,
    Span,
    get_tracer,
    use_tracer,
)

__all__ = [
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NullTracer",
    "RecordingTracer",
    "SchemaValidationError",
    "Span",
    "get_metrics",
    "get_tracer",
    "load_builtin_schema",
    "use_metrics",
    "use_tracer",
    "validate",
    "validate_metrics_summary",
    "validate_trace_events",
]
