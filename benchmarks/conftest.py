"""Shared benchmark fixtures.

Heavy inputs (the CUPID schema and workload) are session-scoped.  Every
bench emits its paper-vs-measured report via :func:`emit`, which both
prints it (visible with ``pytest -s``) and appends it to
``benchmarks/reports/latest.txt`` — pytest captures stdout of passing
tests, so the file is the reliable record of a run.
"""

from __future__ import annotations

import pathlib

import pytest

_REPORT_DIR = pathlib.Path(__file__).parent / "reports"
_REPORT_FILE = _REPORT_DIR / "latest.txt"
_started_fresh = False

from repro.experiments.workload import (
    build_cupid_workload,
    designer_domain_knowledge,
)
from repro.model.graph import SchemaGraph
from repro.schemas.cupid import build_cupid_schema
from repro.schemas.university import build_university_schema


@pytest.fixture(scope="session")
def cupid():
    return build_cupid_schema()


@pytest.fixture(scope="session")
def cupid_graph(cupid):
    return SchemaGraph(cupid)


@pytest.fixture(scope="session")
def oracle():
    return build_cupid_workload()


@pytest.fixture(scope="session")
def knowledge():
    return designer_domain_knowledge()


@pytest.fixture(scope="session")
def university():
    return build_university_schema()


def emit(title: str, body: str) -> None:
    """Print a figure report and append it to the report file."""
    global _started_fresh
    rule = "=" * 72
    text = f"\n{rule}\n{title}\n{rule}\n{body}\n"
    print(text)
    _REPORT_DIR.mkdir(exist_ok=True)
    mode = "a" if _started_fresh else "w"
    _started_fresh = True
    with open(_REPORT_FILE, mode) as handle:
        handle.write(text)


# ----------------------------------------------------------------------
# Benchmark-history ledger (repro.obs.perf)
# ----------------------------------------------------------------------

_HISTORY_FILE = pathlib.Path(__file__).parent.parent / "BENCH_history.jsonl"
#: One run id shared by every record_bench call of this pytest session,
#: so `repro.obs.perf compare` sees the whole suite as one run.
_RUN_ID: str | None = None


def record_bench(name: str, value: float, unit: str = "seconds", **extra) -> None:
    """Append one measured value to ``BENCH_history.jsonl``.

    Every call in one pytest session shares a run id; CI runs
    ``python -m repro.obs.perf compare`` over the accumulated ledger to
    gate genuine slowdowns against the rolling baseline.
    """
    global _RUN_ID
    from repro.obs.perf import BenchRecord, append_records, new_run_id

    if _RUN_ID is None:
        _RUN_ID = new_run_id()
    append_records(
        _HISTORY_FILE,
        [BenchRecord(name=name, value=value, unit=unit, run=_RUN_ID, extra=extra)],
    )
