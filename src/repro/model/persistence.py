"""Persistence for instance databases.

Dumps a :class:`~repro.model.instances.Database` to a versioned JSON
document and restores it — object ids are preserved, every directed
link record is stored (reloading through :meth:`Database.link` re-adds
inverses idempotently, since link storage is set-valued), and attribute
values round-trip with their primitive types.

Format::

    {
      "format": "repro-database",
      "version": 1,
      "schema": { ...repro-schema document... },
      "objects": [{"oid": 1, "class": "student"}, ...],
      "links": [{"source": 1, "relationship": ["student", "take"],
                 "target": 2}, ...],
      "attributes": [{"oid": 1, "owner": "person", "name": "name",
                      "value": "alice"}, ...]
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import SerializationError
from repro.model.instances import Database
from repro.model.schema import Schema
from repro.model.serialization import schema_from_dict, schema_to_dict

__all__ = [
    "database_to_dict",
    "database_from_dict",
    "save_database",
    "load_database",
]

_FORMAT = "repro-database"
_VERSION = 1


def database_to_dict(database: Database) -> dict:
    """Serialize a database (with its schema) to a plain dictionary."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "schema": schema_to_dict(database.schema),
        "objects": [
            {"oid": obj.oid, "class": obj.class_name}
            for obj in database.objects()
        ],
        "links": [
            {
                "source": source_oid,
                "relationship": list(key),
                "target": target_oid,
            }
            for key, source_oid, target_oid in database.iter_links()
        ],
        "attributes": [
            {"oid": oid, "owner": owner, "name": name, "value": value}
            for oid, owner, name, value in database.iter_attributes()
        ],
    }


def database_from_dict(
    document: dict, schema: Schema | None = None
) -> Database:
    """Restore a database; ``schema`` overrides the embedded one."""
    if document.get("format") != _FORMAT:
        raise SerializationError(
            f"not a {_FORMAT} document: format={document.get('format')!r}"
        )
    if document.get("version") != _VERSION:
        raise SerializationError(
            f"unsupported version {document.get('version')!r}"
        )
    if schema is None:
        schema = schema_from_dict(document["schema"])
    database = Database(schema)
    try:
        id_map: dict[int, object] = {}
        for entry in sorted(document["objects"], key=lambda e: e["oid"]):
            obj = database.create(entry["class"])
            if obj.oid != entry["oid"]:
                raise SerializationError(
                    f"object id drift: stored {entry['oid']}, got {obj.oid}"
                )
            id_map[entry["oid"]] = obj
        for entry in document["links"]:
            source = id_map[entry["source"]]
            target = id_map[entry["target"]]
            _declaring_class, rel_name = entry["relationship"]
            # link() re-adds the inverse; set-valued storage makes the
            # stored inverse record a no-op.
            database.link(source, rel_name, target)
        for entry in document["attributes"]:
            database.set_attribute(
                id_map[entry["oid"]], entry["name"], entry["value"]
            )
    except KeyError as exc:
        raise SerializationError(f"missing field {exc}") from exc
    return database


def save_database(database: Database, path: str | Path) -> None:
    """Write a database (with its schema) to a JSON file."""
    Path(path).write_text(
        json.dumps(database_to_dict(database), indent=2) + "\n"
    )


def load_database(path: str | Path, schema: Schema | None = None) -> Database:
    """Read a database from a JSON file."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    return database_from_dict(document, schema=schema)
