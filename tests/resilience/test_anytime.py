"""Anytime semantics: budget trips through the search, the engine (with
its degradation ladder), and general multi-``~`` completion — including
the hard invariant that truncated results never reach the cache."""

import pytest

from repro.core.compiled import CompiledSchema
from repro.core.completion import CompletionSearch
from repro.core.engine import Disambiguator
from repro.core.multi import complete_general
from repro.core.parser import parse_path_expression
from repro.core.target import RelationshipTarget
from repro.errors import BudgetExceededError
from repro.model.graph import SchemaGraph
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.resilience.budget import Budget, TruncationReason, use_budget
from repro.resilience.faults import FakeClock


@pytest.fixture(scope="module")
def cupid_compiled():
    """A private CUPID artifact — budget tests must not leak partials
    or warm entries into the shared registry artifact."""
    from repro.schemas.cupid import build_cupid_schema

    return CompiledSchema(build_cupid_schema())


def _search(compiled, e=1):
    return CompletionSearch(compiled.graph, order=compiled.order, e=e)


class TestSearchTrips:
    def test_node_cap_partial_ok_returns_flagged_result(self, cupid_compiled):
        budget = Budget(max_nodes=50, partial_ok=True)
        result = _search(cupid_compiled).run(
            "experiment",
            RelationshipTarget("conductance"),
            budget=budget,
        )
        assert not result.exhausted
        assert result.is_partial
        assert result.truncation_reason == TruncationReason.NODES
        assert result.stats.budget_trips == 1
        assert result.stats.recursive_calls <= 50
        assert "[partial: nodes]" in str(result)

    def test_partial_paths_are_genuine_completions(self, cupid_compiled):
        budget = Budget(max_nodes=200, partial_ok=True)
        partial = _search(cupid_compiled).run(
            "experiment", RelationshipTarget("conductance"), budget=budget
        )
        for path in partial.paths:
            assert path.edges[-1].name == "conductance"
            assert path.is_acyclic

    def test_raise_on_trip_carries_best_so_far(self, cupid_compiled):
        budget = Budget(max_nodes=200)  # partial_ok=False
        with pytest.raises(BudgetExceededError) as excinfo:
            _search(cupid_compiled).run(
                "experiment",
                RelationshipTarget("conductance"),
                budget=budget,
            )
        error = excinfo.value
        assert error.reason == TruncationReason.NODES
        assert error.partial is not None
        assert not error.partial.exhausted

    def test_deadline_trip_on_virtual_clock(self, cupid_compiled):
        clock = FakeClock()
        original_edges_from = cupid_compiled.graph.edges_from

        def slow_edges_from(node):
            clock.advance(0.010)
            return original_edges_from(node)

        graph = SchemaGraph(cupid_compiled.schema)
        graph.edges_from = slow_edges_from
        budget = Budget(
            max_seconds=0.5,
            clock=clock,
            check_interval=1,
            partial_ok=True,
        )
        # pruning="none": the virtual clock advances via edges_from,
        # which only the reference loop calls per node (the closure loop
        # walks precomputed edge lists).
        search = CompletionSearch(
            graph, order=cupid_compiled.order, e=1, pruning="none"
        )
        result = search.run(
            "experiment", RelationshipTarget("conductance"), budget=budget
        )
        assert result.truncation_reason == TruncationReason.DEADLINE

    def test_unbudgeted_run_is_unaffected(self, cupid_compiled):
        result = _search(cupid_compiled).run(
            "experiment", RelationshipTarget("conductance")
        )
        assert result.exhausted
        assert result.truncation_reason is None
        assert result.stats.budget_trips == 0

    def test_trip_increments_metrics_counter(self, cupid_compiled):
        registry = MetricsRegistry()
        with use_metrics(registry):
            _search(cupid_compiled).run(
                "experiment",
                RelationshipTarget("conductance"),
                budget=Budget(max_nodes=50, partial_ok=True),
            )
        assert registry.counter("budget.trips").value == 1.0


class TestCacheInvariant:
    def test_partial_results_never_enter_the_cache(self, cupid):
        compiled = CompiledSchema(cupid)
        engine = Disambiguator(compiled, e=1)
        result = engine.complete(
            "experiment ~ conductance",
            budget=Budget(max_nodes=50, partial_ok=True),
        )
        assert result.is_partial
        assert len(compiled.cache) == 0

    def test_cache_put_rejects_partials_as_backstop(self, cupid_compiled):
        partial = _search(cupid_compiled).run(
            "experiment",
            RelationshipTarget("conductance"),
            budget=Budget(max_nodes=50, partial_ok=True),
        )
        with pytest.raises(ValueError, match="refusing to cache"):
            cupid_compiled.cache.put(("poison",), partial)
        assert len(cupid_compiled.cache) == 0

    def test_ungoverned_rerun_after_partial_is_exhaustive_and_cached(
        self, cupid
    ):
        compiled = CompiledSchema(cupid)
        engine = Disambiguator(compiled, e=1)
        engine.complete(
            "experiment ~ conductance",
            budget=Budget(max_nodes=50, partial_ok=True),
        )
        full = engine.complete("experiment ~ conductance")
        assert full.exhausted
        # The exhaustive result is cached; a warm hit returns the very
        # same frozen object (byte-identical results).
        assert engine.complete("experiment ~ conductance") is full


class TestEngineLadder:
    def test_tripped_high_e_degrades_to_lower_e(self, cupid):
        compiled = CompiledSchema(cupid)
        engine = Disambiguator(compiled, e=1)
        baseline = engine.complete("experiment ~ conductance")
        e1_calls = baseline.stats.recursive_calls
        compiled.cache.clear()

        # A node budget the E=1 rung fits but E=3 cannot.
        registry = MetricsRegistry()
        ladder_engine = Disambiguator(compiled, e=3)
        with use_metrics(registry):
            result = ladder_engine.complete(
                "experiment ~ conductance",
                budget=Budget(max_nodes=e1_calls + 50, partial_ok=True),
            )
        assert not result.exhausted
        assert result.truncation_reason == TruncationReason.degraded(1)
        assert result.paths == baseline.paths
        assert registry.counter("budget.degrades").value >= 1.0
        assert len(compiled.cache) == 0  # degraded answers are partial

    def test_every_rung_tripped_raises_by_default(self, cupid):
        compiled = CompiledSchema(cupid)
        engine = Disambiguator(compiled, e=3)
        with pytest.raises(BudgetExceededError) as excinfo:
            engine.complete(
                "experiment ~ conductance", budget=Budget(max_nodes=30)
            )
        assert excinfo.value.partial is not None
        assert len(compiled.cache) == 0

    def test_every_rung_tripped_partial_ok_returns_flagged(self, cupid):
        compiled = CompiledSchema(cupid)
        engine = Disambiguator(compiled, e=3)
        result = engine.complete(
            "experiment ~ conductance",
            budget=Budget(max_nodes=30, partial_ok=True),
        )
        assert result.is_partial
        assert result.truncation_reason in TruncationReason.ALL

    def test_engine_default_budget_governs_every_call(self, cupid):
        compiled = CompiledSchema(cupid)
        engine = Disambiguator(
            compiled, e=1, budget=Budget(max_nodes=50, partial_ok=True)
        )
        assert engine.complete("experiment ~ conductance").is_partial

    def test_ambient_budget_governs_the_engine(self, cupid):
        compiled = CompiledSchema(cupid)
        engine = Disambiguator(compiled, e=1)
        with use_budget(Budget(max_nodes=50, partial_ok=True)):
            assert engine.complete("experiment ~ conductance").is_partial
        assert engine.complete("experiment ~ conductance").exhausted

    def test_warm_hits_are_served_under_any_budget(self, cupid):
        compiled = CompiledSchema(cupid)
        engine = Disambiguator(compiled, e=1)
        cold = engine.complete("experiment ~ conductance")
        # Even a hopeless budget is irrelevant for a warm hit — the
        # cache only holds exhaustive results.
        warm = engine.complete(
            "experiment ~ conductance", budget=Budget(max_nodes=1)
        )
        assert warm is cold


class TestGeneralExpressions:
    def test_trip_in_final_segment_keeps_candidates(self, university):
        compiled = CompiledSchema(university)
        expression = parse_path_expression("ta ~ name")
        result = complete_general(
            compiled,
            expression,
            budget=Budget(max_nodes=5, partial_ok=True),
        )
        assert not result.exhausted
        assert result.truncation_reason in TruncationReason.ALL

    def test_trip_raises_without_partial_ok(self, cupid):
        compiled = CompiledSchema(cupid)
        expression = parse_path_expression("experiment ~ conductance")
        with pytest.raises(BudgetExceededError):
            complete_general(
                compiled, expression, budget=Budget(max_nodes=30)
            )

    def test_unbudgeted_general_completion_unchanged(self, university):
        compiled = CompiledSchema(university)
        expression = parse_path_expression("ta ~ name")
        result = complete_general(compiled, expression)
        assert result.exhausted
        assert result.paths


class TestAcceptanceCriterion:
    def test_cupid_e3_with_50ms_deadline_returns_quickly_flagged(self, cupid):
        """The resilience acceptance scenario: a CUPID E=3 completion
        under a 50ms deadline must come back promptly as a flagged
        partial (or a degraded answer) instead of running multi-second.

        Pinned to ``pruning="none"``: the scenario exercises the budget
        envelope around the heavy *ungoverned* Algorithm 2 search.  The
        closure-pruned loop finishes this query exhaustively inside
        50ms, so the trip would never fire."""
        import time

        compiled = CompiledSchema(cupid)
        engine = Disambiguator(compiled, e=3, pruning="none")
        started = time.perf_counter()
        result = engine.complete(
            "experiment ~ conductance",
            budget=Budget.from_millis(50, partial_ok=True),
        )
        elapsed = time.perf_counter() - started
        assert not result.exhausted
        assert result.truncation_reason is not None
        # Ladder retries re-arm the deadline, so allow a few rungs plus
        # scheduling slack — but nowhere near an ungoverned E=3 run.
        assert elapsed < 2.0
        assert len(compiled.cache) == 0

    def test_cupid_e3_with_50ms_deadline_raises_with_payload(self, cupid):
        compiled = CompiledSchema(cupid)
        engine = Disambiguator(compiled, e=3, pruning="none")
        try:
            result = engine.complete(
                "experiment ~ conductance", budget=Budget.from_millis(50)
            )
        except BudgetExceededError as error:
            assert error.partial is not None
            assert not error.partial.exhausted
        else:
            # The ladder may still land an exhaustive lower-E answer in
            # time; then the result must carry the degraded flag.
            assert result.truncation_reason is not None
