"""Parser for path-expression syntax (paper Sections 2.2.1-2.2.2).

Grammar::

    expression := class-name (connector name)*
    connector  := "@>" | "<@" | "$>" | "<$" | "." | "~"
    name       := [A-Za-z_][A-Za-z0-9_-]*

Whitespace is permitted around connectors (the paper writes both
``ta~name`` and ``ta ~ name``).  Connector tokens are matched longest
first so ``<@`` never parses as ``<`` + ``@``.
"""

from __future__ import annotations

import re

from repro.algebra.connectors import Connector
from repro.core.ast import PathExpression, Step
from repro.errors import PathSyntaxError

__all__ = ["parse_path_expression", "tokenize"]

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\-]*")

# Longest symbols first so two-character connectors win.
_CONNECTOR_SYMBOLS = ("@>", "<@", "$>", "<$", "..", ".", "~")

_CONNECTOR_FOR_SYMBOL = {
    "@>": Connector.ISA,
    "<@": Connector.MAY_BE,
    "$>": Connector.HAS_PART,
    "<$": Connector.IS_PART_OF,
    ".": Connector.ASSOC,
}


def tokenize(text: str) -> list[tuple[str, str, int]]:
    """Split expression text into ``(kind, value, position)`` tokens.

    Kinds are ``"name"`` and ``"connector"``.  Raises
    :class:`~repro.errors.PathSyntaxError` on unexpected characters.
    """
    tokens: list[tuple[str, str, int]] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        match = _NAME_RE.match(text, index)
        if match:
            tokens.append(("name", match.group(), index))
            index = match.end()
            continue
        for symbol in _CONNECTOR_SYMBOLS:
            if text.startswith(symbol, index):
                tokens.append(("connector", symbol, index))
                index += len(symbol)
                break
        else:
            raise PathSyntaxError(
                f"unexpected character {char!r}", index, text
            )
    return tokens


def parse_path_expression(text: str) -> PathExpression:
    """Parse expression text into a :class:`PathExpression`.

    Examples
    --------
    >>> str(parse_path_expression("ta ~ name"))
    'ta~name'
    >>> parse_path_expression("student.take.teacher").is_complete
    True
    """
    tokens = tokenize(text)
    if not tokens:
        raise PathSyntaxError("empty path expression", 0, text)
    kind, value, position = tokens[0]
    if kind != "name":
        raise PathSyntaxError(
            "expression must start with a class name", position, text
        )
    root = value
    steps: list[Step] = []
    index = 1
    while index < len(tokens):
        kind, symbol, position = tokens[index]
        if kind != "connector":
            raise PathSyntaxError(
                f"expected a connector, got {symbol!r}", position, text
            )
        if symbol == "..":
            raise PathSyntaxError(
                "'..' is a derived connector and cannot be written in "
                "path expressions; use '~' for an arbitrary path",
                position,
                text,
            )
        if index + 1 >= len(tokens):
            raise PathSyntaxError(
                f"connector {symbol!r} has no relationship name",
                position,
                text,
            )
        kind_next, name, position_next = tokens[index + 1]
        if kind_next != "name":
            raise PathSyntaxError(
                f"expected a relationship name, got {name!r}",
                position_next,
                text,
            )
        if symbol == "~":
            steps.append(Step.tilde(name))
        else:
            steps.append(Step(_CONNECTOR_FOR_SYMBOL[symbol], name))
        index += 2
    return PathExpression(root, tuple(steps))
