"""A second-domain mini-workload (paper §7: "several schemas").

Five ad-hoc incomplete queries a clinical data manager might pose on
the hospital schema, with intents calibrated the same way as the CUPID
workload: the strongest/shortest completions are what the user means,
and obviously-plausible alternates are accepted when shown.  This is
the generalization check — the same algorithm, untouched, against a
different domain's vocabulary and shape.
"""

from __future__ import annotations

from repro.core.domain import DomainKnowledge
from repro.experiments.oracle import DesignerOracle, WorkloadQuery
from repro.schemas.hospital import HOSPITAL_AUXILIARY_CLASSES

__all__ = ["build_hospital_workload", "hospital_domain_knowledge"]


def hospital_domain_knowledge() -> DomainKnowledge:
    """Exclude the terminology registry (the schema's auxiliary hub)."""
    return DomainKnowledge.excluding(*HOSPITAL_AUXILIARY_CLASSES)


def build_hospital_workload() -> DesignerOracle:
    """The five hospital queries with calibrated intents."""
    queries = (
        WorkloadQuery(
            query_id="h1",
            text="ward ~ name",
            intended=("ward.name",),
            note="the ward's own name (attribute shadowing test)",
        ),
        WorkloadQuery(
            query_id="h2",
            text="surgeon ~ description",
            intended=(
                "surgeon@>physician.admits.diagnosis.description",
            ),
            also_plausible=(
                "surgeon.performs.admission.diagnosis.description",
            ),
            note="diagnoses of the surgeon's admitted patients",
        ),
        WorkloadQuery(
            query_id="h3",
            text="nurse ~ label",
            intended=("nurse.assigned_ward$>room$>bed.label",),
            note="bed labels on the nurse's assigned ward",
        ),
        WorkloadQuery(
            query_id="h4",
            text="patient ~ value",
            intended=(
                "patient.admission.order<@lab_order.result.value",
            ),
            note="lab result values across the patient's admissions",
        ),
        WorkloadQuery(
            query_id="h5",
            text="hospital ~ dose",
            intended=(
                "hospital$>pharmacy$>drug_stock.drug.ordered_in.dose",
                "hospital$>campus$>building$>ward$>room$>bed.admission"
                ".order<@medication_order.dose",
            ),
            note=(
                "consciously ambiguous: doses of stocked drugs vs doses "
                "ordered for admitted patients"
            ),
        ),
    )
    return DesignerOracle(queries)
