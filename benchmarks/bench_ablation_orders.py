"""Bench A1 — ablation over better-than partial-order variants.

The paper chose its AGG among ~20 alternatives; this bench scores the
reconstructed default order against a flat (length-only) order, two
rank-based variants, and a forced total order on the full workload.

Measured trade-offs (also asserted below):

* the default hits the paper's operating point — precision 1.0 with
  |S| ~ 1.4 at E=1;
* the flat order accidentally recovers one tie the best[]-bound drops
  (slightly higher recall) but pays with strictly worse precision as E
  grows — exactly the paper's argument for ordering by relationship
  *kind* before length;
* the forced total order prunes hardest (highest precision at large E)
  but violates Figure 3's incomparability constraints, which breaks the
  multiple-inheritance semantics of Section 4.3 (tested in the unit
  suite).
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.ablation import run_order_ablation
from repro.experiments.reporting import table


def _render(rows, e):
    return table(
        ["order", "avg recall", "avg precision", "avg |S|"],
        [
            (
                row.order_name,
                f"{row.average_recall:.3f}",
                f"{row.average_precision:.3f}",
                f"{row.average_returned:.1f}",
            )
            for row in rows
        ],
    )


@pytest.mark.benchmark(group="ablation-orders")
def test_order_variants_e1(benchmark, cupid, oracle):
    rows = benchmark.pedantic(
        run_order_ablation,
        args=(cupid, oracle),
        kwargs={"e": 1},
        rounds=1,
        iterations=1,
    )
    emit("Ablation A1: partial-order variants (E=1)", _render(rows, 1))
    by_name = {row.order_name: row for row in rows}
    default = by_name["default"]
    assert default.average_recall == pytest.approx(0.9)
    assert default.average_precision == pytest.approx(1.0)


@pytest.mark.benchmark(group="ablation-orders")
def test_order_variants_e2(benchmark, cupid, oracle):
    rows = benchmark.pedantic(
        run_order_ablation,
        args=(cupid, oracle),
        kwargs={"e": 2},
        rounds=1,
        iterations=1,
    )
    emit("Ablation A1: partial-order variants (E=2)", _render(rows, 2))
    by_name = {row.order_name: row for row in rows}
    # the kind-first default strictly beats length-only on precision
    assert (
        by_name["default"].average_precision
        > by_name["flat"].average_precision
    )
    assert by_name["default"].average_recall == pytest.approx(0.9)
