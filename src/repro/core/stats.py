"""Traversal statistics (paper Section 5.4).

The paper measures algorithm cost in *recursive calls* (each call is one
class-node exploration; 0.17 ms each on the original DecStation) plus
wall-clock response time.  :class:`TraversalStats` records those and the
pruning breakdown, so the benchmarks can report both the
hardware-independent and the wall-clock views.

Since the observability PR the dataclass is a *carrier*, not the
terminal sink: :meth:`TraversalStats.record_to` folds a run's counters
into a :class:`~repro.obs.metrics.MetricsRegistry`, where they
accumulate across queries as counters and per-query histograms.
"""

from __future__ import annotations

import dataclasses

__all__ = ["TraversalStats"]

#: Fields that describe a *shared* one-off cost rather than per-run
#: work.  :meth:`TraversalStats.add` combines them with ``max`` instead
#: of ``+``: every member of a batch over one compiled artifact carries
#: the same ``compile_seconds``, so summing would multiply the one-off
#: compile cost by the batch size.
_SHARED_FIELDS = frozenset({"compile_seconds"})


@dataclasses.dataclass
class TraversalStats:
    """Counters collected by one run of a completion traversal.

    The ``cache_*`` and ``compile_seconds`` fields belong to the
    compile-once/query-many layer (:mod:`repro.core.compiled`): they
    stay zero on raw :class:`~repro.core.completion.CompletionSearch`
    runs and are filled in by batch entry points such as
    :meth:`repro.core.engine.Disambiguator.complete_batch`, so warm/cold
    benchmark reports can show how much traversal work the shared
    completion cache absorbed.

    ``budget_trips`` counts searches stopped early by a
    :class:`~repro.resilience.budget.Budget`; a nonzero value means the
    run (or some member of an aggregated batch) returned an anytime
    partial result or was answered by the degradation ladder.

    Timing conventions:

    * ``elapsed_seconds`` is the wall-clock of the run that *produced*
      the result.  A cache hit hands back the frozen result of the cold
      run, so aggregating over a warm batch reports the work the cache
      absorbed, not the (near-zero) warm wall-clock — measure batch
      wall-clock around the batch call itself.
    * ``compile_seconds`` is the shared one-off artifact cost; it is
      combined with ``max`` by :meth:`add` (see ``_SHARED_FIELDS``).
    """

    recursive_calls: int = 0
    edges_considered: int = 0
    complete_paths_found: int = 0
    pruned_visited: int = 0
    pruned_target_bound: int = 0
    pruned_best_bound: int = 0
    rescued_by_caution: int = 0
    nodes_pruned_reachability: int = 0
    nodes_pruned_bound: int = 0
    preempted_paths: int = 0
    budget_trips: int = 0
    elapsed_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    compile_seconds: float = 0.0

    def add(self, other: "TraversalStats") -> None:
        """Accumulate another run's counters into this one.

        Per-run counters sum; shared one-off costs (currently
        ``compile_seconds``) take the max, because batch members over
        one artifact all carry the same compile time and summing would
        double-count it.
        """
        for name in _SUMMED_FIELD_NAMES:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for name in _SHARED_FIELDS:
            setattr(self, name, max(getattr(self, name), getattr(other, name)))

    @property
    def seconds_per_call(self) -> float:
        """Average cost of one recursive call (the paper's 0.17 ms
        figure, on our hardware).

        Defined as 0.0 when ``recursive_calls == 0`` — a validated
        complete expression or a pure cache hit does no traversal work,
        so a per-call average is meaningless there.  Any wall-clock such
        a run did spend is still reported separately via
        ``elapsed_seconds`` (and in :meth:`as_dict` / ``str()``); never
        infer "free" from ``seconds_per_call == 0.0`` alone.
        """
        if self.recursive_calls == 0:
            return 0.0
        return self.elapsed_seconds / self.recursive_calls

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for reports."""
        return dataclasses.asdict(self) | {
            "seconds_per_call": self.seconds_per_call
        }

    def record_to(self, registry) -> None:
        """Fold this run's counters into a metrics registry.

        ``registry`` is duck-typed (anything with the
        :class:`~repro.obs.metrics.MetricsRegistry` interface); the
        ambient no-op registry makes this free when metrics are off.
        """
        registry.record_completion(self)

    def __str__(self) -> str:
        return (
            f"calls={self.recursive_calls} edges={self.edges_considered} "
            f"complete={self.complete_paths_found} "
            f"pruned(visited/target/best)="
            f"{self.pruned_visited}/{self.pruned_target_bound}/"
            f"{self.pruned_best_bound} "
            f"caution-rescues={self.rescued_by_caution} "
            f"closure(reach/bound)="
            f"{self.nodes_pruned_reachability}/{self.nodes_pruned_bound} "
            f"time={self.elapsed_seconds * 1000:.2f}ms"
        )

#: Precomputed once — ``add`` sits on the warm-cache hot loop, where a
#: per-call ``dataclasses.fields`` walk is measurable.
_SUMMED_FIELD_NAMES = tuple(
    field.name
    for field in dataclasses.fields(TraversalStats)
    if field.name not in _SHARED_FIELDS
)
