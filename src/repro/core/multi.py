"""General incomplete path expressions: multiple ``~`` and mixed
connectors (the generalization the paper delegates to reference [17]).

An expression like ``dept ~ student . take ~ name`` alternates explicit
steps with ``~`` gaps.  Completion proceeds segment by segment:

* an **explicit step** ``<connector> name`` is matched against the
  single schema edge out of the current anchor class with that name and
  kind (the paper: "all other connectors are matched by a single edge");
* a **tilde step** ``~ name`` runs the single-gap completion algorithm
  from the current anchor class targeting the relationship name, and
  forks the partial path over each optimal sub-completion.

Partial paths that become globally cyclic (revisit a class across
segment boundaries) are dropped, keeping the paper's acyclicity
semantics for the whole expression.  The final candidate set is ranked
by AGG* over the full-path labels.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.algebra.agg import Aggregator
from repro.algebra.connectors import connector_for_kind
from repro.algebra.order import DEFAULT_ORDER, PartialOrder
from repro.core.ast import ConcretePath, PathExpression
from repro.core.completion import CompletionSearch
from repro.core.stats import TraversalStats
from repro.core.target import RelationshipTarget
from repro.errors import BudgetExceededError, NoCompletionError, PathExpressionError
from repro.model.graph import SchemaEdge, SchemaGraph
from repro.obs.tracer import get_tracer
from repro.resilience.budget import Budget, BudgetMeter, get_budget

if TYPE_CHECKING:  # pragma: no cover - imported lazily to avoid a cycle
    from repro.core.compiled import CompiledSchema

__all__ = ["complete_general", "GeneralCompletionResult"]


@dataclasses.dataclass(frozen=True)
class GeneralCompletionResult:
    """Outcome of completing a general incomplete expression.

    ``exhausted``/``truncation_reason`` carry the anytime contract of
    :class:`~repro.core.completion.CompletionResult`: a budget trip in
    any segment flags the whole result, and candidates are only
    reported when every segment was at least reached (prefixes are not
    completions).
    """

    expression: PathExpression
    paths: tuple[ConcretePath, ...]
    stats: TraversalStats
    exhausted: bool = True
    truncation_reason: str | None = None

    @property
    def expressions(self) -> list[str]:
        return [str(path) for path in self.paths]

    @property
    def is_empty(self) -> bool:
        return not self.paths


def _match_explicit_step(
    graph: SchemaGraph, anchor: str, step
) -> SchemaEdge | None:
    """The single edge matching an explicit step at ``anchor``.

    Matches on relationship name; if the step's connector kind differs
    from the edge's, the step is rejected (None).
    """
    for edge in graph.edges_from(anchor):
        if edge.name != step.name:
            continue
        if connector_for_kind(edge.kind) is not step.connector:
            return None
        return edge
    return None


def complete_general(
    graph: "SchemaGraph | CompiledSchema",
    expression: PathExpression,
    order: PartialOrder | None = None,
    e: int = 1,
    use_caution_sets: bool = True,
    apply_inheritance_criterion: bool = True,
    budget: Budget | None = None,
    meter: BudgetMeter | None = None,
    pruning: str | None = None,
    kernel: str | None = None,
) -> GeneralCompletionResult:
    """Complete an arbitrary incomplete path expression.

    ``graph`` may be a raw :class:`~repro.model.graph.SchemaGraph` (a
    private search is built, as before the compile-once refactor) or a
    :class:`~repro.core.compiled.CompiledSchema`, in which case every
    ``~`` segment's sub-completion goes through the artifact's shared
    LRU cache — tilde segments recurring across different queries are
    traversed once.

    Complete inputs are validated against the schema and returned as the
    single candidate.  Raises
    :class:`~repro.errors.NoCompletionError` when no consistent
    completion exists.

    One ``budget`` (explicit, or the ambient
    :func:`repro.resilience.budget.get_budget`) governs the whole
    expression: all segment sub-completions share one armed meter, so
    the deadline and node caps bound total work, not per-segment work.
    On a trip the result is flagged ``exhausted=False``; candidates are
    only reported if the final segment was reached (shorter prefixes
    are not completions).  Under a ``partial_ok=False`` policy the
    flagged result is raised inside a
    :class:`~repro.errors.BudgetExceededError` instead.  A caller
    passing an armed ``meter`` must have armed it from
    ``budget.allowing_partial()`` and applies its own policy to the
    returned flags (this is how the engine's degradation ladder drives
    the rungs).
    """
    from repro.core.compiled import CompiledSchema

    compiled: CompiledSchema | None = None
    if isinstance(graph, CompiledSchema):
        compiled = graph
        graph = compiled.graph
        if order is not None and order is not compiled.order:
            raise PathExpressionError(
                "order is fixed by the compiled schema; compile a new "
                "artifact instead of overriding it"
            )
        order = compiled.order
    order = order if order is not None else DEFAULT_ORDER
    aggregator = Aggregator(order, e=e)
    graph.schema.get_class(expression.root)
    if not expression.steps:
        raise PathExpressionError("expression has no steps to complete")

    # Arm one shared meter; sub-searches run in partial mode so a trip
    # surfaces as a flag (not an exception) and this function applies
    # the caller's policy once, over the whole expression.
    raise_on_trip = False
    if meter is None:
        if budget is None:
            budget = get_budget()
        if budget is not None and not budget.is_unlimited:
            raise_on_trip = not budget.partial_ok
            meter = budget.allowing_partial().start()

    stats = TraversalStats()
    if compiled is None:
        search = CompletionSearch(
            graph,
            order=order,
            e=e,
            use_caution_sets=use_caution_sets,
            apply_inheritance_criterion=apply_inheritance_criterion,
            pruning=pruning,
            kernel=kernel,
        )

        def complete_segment(anchor: str, name: str):
            return search.run(anchor, RelationshipTarget(name), meter=meter)

    else:

        def complete_segment(anchor: str, name: str):
            return compiled.complete_simple(
                anchor,
                name,
                e=e,
                use_caution_sets=use_caution_sets,
                apply_inheritance_criterion=apply_inheritance_criterion,
                meter=meter,
                pruning=pruning,
                kernel=kernel,
            )

    tracer = get_tracer()
    truncation: str | None = None
    final_index = len(expression.steps) - 1
    partials: list[ConcretePath] = [ConcretePath.start(expression.root)]
    for index, step in enumerate(expression.steps):
        next_partials: list[ConcretePath] = []
        if step.is_tilde:
            with tracer.span(
                "segment",
                index=index,
                step=f"~ {step.name}",
                partials=len(partials),
            ) as span:
                # Group partials by anchor so each sub-completion runs once.
                by_anchor: dict[str, list[ConcretePath]] = {}
                for partial in partials:
                    by_anchor.setdefault(partial.target_class, []).append(
                        partial
                    )
                for anchor, group in by_anchor.items():
                    sub = complete_segment(anchor, step.name)
                    stats.add(sub.stats)
                    for sub_path in sub.paths:
                        for partial in group:
                            combined = _concatenate(partial, sub_path)
                            if combined is not None:
                                next_partials.append(combined)
                    if not sub.exhausted:
                        truncation = sub.truncation_reason
                        span.set(truncated=truncation)
                        break
                span.set(anchors=len(by_anchor), survivors=len(next_partials))
        else:
            for partial in partials:
                edge = _match_explicit_step(
                    graph, partial.target_class, step
                )
                if edge is None:
                    continue
                if edge.target in partial.classes():
                    continue  # would make the whole path cyclic
                next_partials.append(partial.extend(edge))
        if truncation is not None and index != final_index:
            # Tripped before the last segment: the surviving prefixes
            # are not completions — the anytime answer is empty.
            partials = []
            break
        partials = next_partials
        if not partials:
            break
        if meter is not None and truncation is None:
            truncation = meter.check_deadline_now()
            if truncation is not None and index != final_index:
                partials = []
                break

    if not partials and truncation is None:
        raise NoCompletionError(
            f"no completion consistent with {expression}"
        )

    # Rank full paths by AGG* on their overall labels.
    with tracer.span("agg_select", candidates=len(partials)) as span:
        optimal_keys = {
            label.key
            for label in aggregator.aggregate([p.label() for p in partials])
        }
        survivors = [p for p in partials if p.label().key in optimal_keys]
        unique: dict[tuple, ConcretePath] = {}
        for path in survivors:
            unique.setdefault((path.root, path.edges), path)
        span.set(optimal_labels=len(optimal_keys), survivors=len(unique))
    with tracer.span("rank", paths=len(unique)):
        ranked = sorted(
            unique.values(),
            key=lambda p: (
                p.label().connector.sort_rank,
                p.semantic_length,
                p.length,
                str(p),
            ),
        )
    result = GeneralCompletionResult(
        expression=expression,
        paths=tuple(ranked),
        stats=stats,
        exhausted=truncation is None,
        truncation_reason=truncation,
    )
    if truncation is not None and raise_on_trip:
        raise BudgetExceededError(truncation, partial=result)
    return result


def _concatenate(
    prefix: ConcretePath, suffix: ConcretePath
) -> ConcretePath | None:
    """Join two concrete paths; None when the result would be cyclic."""
    if suffix.root != prefix.target_class:
        raise PathExpressionError(
            f"cannot join path ending at {prefix.target_class!r} with "
            f"path rooted at {suffix.root!r}"
        )
    combined = prefix
    for edge in suffix.edges:
        combined = combined.extend(edge)
    return combined if combined.is_acyclic else None
