"""Bench A4 — Algorithm 2 against exhaustive enumeration.

Verifies the sound-and-nonempty agreement (see DESIGN.md Section 4) on
the workload and reports the node-visit advantage of branch-and-bound
over brute force — the reason Section 4's machinery exists at all.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.ablation import run_exhaustive_comparison
from repro.experiments.oracle import DesignerOracle, WorkloadQuery
from repro.experiments.reporting import table

UNIVERSITY_ORACLE = DesignerOracle(
    [
        WorkloadQuery("w1", "ta ~ name", ("ta@>grad@>student@>person.name",)),
        WorkloadQuery("w2", "ta ~ teach", ("ta@>instructor@>teacher.teach",)),
        WorkloadQuery(
            "w3",
            "department ~ ssn",
            ("department$>professor@>teacher@>employee@>person.ssn",),
        ),
        WorkloadQuery(
            "w4", "university ~ name", ("university.name",)
        ),
    ]
)


@pytest.mark.benchmark(group="vs-exhaustive")
def test_university_agreement(benchmark, university):
    rows = benchmark.pedantic(
        run_exhaustive_comparison,
        args=(university, UNIVERSITY_ORACLE),
        kwargs={"e": 1},
        rounds=1,
        iterations=1,
    )
    emit(
        "Ablation A4: Algorithm 2 vs exhaustive enumeration (university)",
        table(
            ["query", "alg paths", "optimal", "agrees", "alg calls", "enum paths"],
            [
                (
                    row.query_id,
                    row.algorithm_paths,
                    row.optimal_paths_by_enumeration,
                    "yes" if row.agrees else "NO",
                    row.algorithm_calls,
                    row.enumerated_paths,
                )
                for row in rows
            ],
        ),
    )
    assert all(row.agrees for row in rows)


@pytest.mark.benchmark(group="vs-exhaustive")
def test_cupid_node_visit_advantage(benchmark, cupid, oracle):
    """On the paper-scale schema the enumeration is thousands of times
    larger than the algorithm's visit count (capped for tractability)."""
    subset = DesignerOracle(list(oracle)[:3])
    rows = benchmark.pedantic(
        run_exhaustive_comparison,
        args=(cupid, subset),
        kwargs={"e": 1, "enumeration_cap": 200_000, "max_visits": 2_000_000},
        rounds=1,
        iterations=1,
    )
    emit(
        "Ablation A4: node-visit advantage at CUPID scale",
        table(
            ["query", "alg calls", "enumerated consistent paths (capped)"],
            [
                (row.query_id, row.algorithm_calls, row.enumerated_paths)
                for row in rows
            ],
        ),
    )
    for row in rows:
        assert row.algorithm_calls * 10 < row.enumerated_paths
