"""Fluent schema construction API.

:class:`SchemaBuilder` makes declaring the paper's example schemas read
almost like the prose: ``builder.cls("student").isa("person")`` etc.
Every relationship method takes the *source-perspective* kind and
installs the inverse automatically (the paper assumes inverses are
always present).
"""

from __future__ import annotations

from repro.model.kinds import RelationshipKind
from repro.model.schema import Schema

__all__ = ["SchemaBuilder", "ClassBuilder"]


class ClassBuilder:
    """Builder scoped to one class; returned by :meth:`SchemaBuilder.cls`."""

    def __init__(self, builder: "SchemaBuilder", name: str) -> None:
        self._builder = builder
        self.name = name

    def _relate(
        self,
        kind: RelationshipKind,
        target: str,
        name: str = "",
        inverse_name: str = "",
        add_inverse: bool = True,
    ) -> "ClassBuilder":
        self._builder.ensure_class(target)
        self._builder.schema.add_relationship(
            self.name,
            target,
            kind,
            name=name,
            inverse_name=inverse_name,
            add_inverse=add_inverse,
        )
        return self

    def isa(self, superclass: str, name: str = "", inverse_name: str = "") -> "ClassBuilder":
        """Declare ``self Isa superclass`` (inverse: May-Be)."""
        return self._relate(
            RelationshipKind.ISA, superclass, name=name, inverse_name=inverse_name
        )

    def has_part(
        self, part: str, name: str = "", inverse_name: str = ""
    ) -> "ClassBuilder":
        """Declare ``self Has-Part part`` (inverse: Is-Part-Of)."""
        return self._relate(
            RelationshipKind.HAS_PART, part, name=name, inverse_name=inverse_name
        )

    def part_of(
        self, whole: str, name: str = "", inverse_name: str = ""
    ) -> "ClassBuilder":
        """Declare ``self Is-Part-Of whole`` (inverse: Has-Part)."""
        return self._relate(
            RelationshipKind.IS_PART_OF, whole, name=name, inverse_name=inverse_name
        )

    def assoc(
        self, other: str, name: str = "", inverse_name: str = ""
    ) -> "ClassBuilder":
        """Declare ``self Is-Associated-With other`` (self-inverse kind)."""
        return self._relate(
            RelationshipKind.IS_ASSOCIATED_WITH,
            other,
            name=name,
            inverse_name=inverse_name,
        )

    def attr(self, name: str, primitive: str = "C") -> "ClassBuilder":
        """Declare an attribute (association into a primitive class)."""
        self._builder.schema.add_attribute(self.name, name, primitive)
        return self

    def cls(self, name: str, doc: str = "") -> "ClassBuilder":
        """Switch to (creating and) building another class."""
        return self._builder.cls(name, doc=doc)

    def build(self) -> Schema:
        """Finish and return the schema (validates Isa acyclicity)."""
        return self._builder.build()


class SchemaBuilder:
    """Entry point for fluent schema construction.

    Examples
    --------
    >>> schema = (
    ...     SchemaBuilder("uni")
    ...     .cls("person").attr("name")
    ...     .cls("student").isa("person")
    ...     .build()
    ... )
    >>> schema.user_class_count
    2
    """

    def __init__(self, name: str = "schema") -> None:
        self.schema = Schema(name)

    def ensure_class(self, name: str) -> None:
        """Create the class if it does not exist yet (primitives exist)."""
        if not self.schema.has_class(name):
            self.schema.add_class(name)

    def cls(self, name: str, doc: str = "") -> ClassBuilder:
        """Create (if needed) and scope to the named class."""
        if not self.schema.has_class(name):
            self.schema.add_class(name, doc=doc)
        return ClassBuilder(self, name)

    def build(self) -> Schema:
        """Validate and return the schema."""
        self.schema.validate()
        return self.schema

    def diff_against(self, base: Schema) -> "SchemaDelta":
        """The delta that edits ``base``'s content into this builder's.

        The "edit a scratch copy fluently, then diff" workflow: start
        from ``SchemaBuilder`` wrapping a :meth:`Schema.copy` of a live
        schema, reshape it with the fluent API, and hand the resulting
        delta to :meth:`CompiledSchema.evolve
        <repro.core.compiled.CompiledSchema.evolve>`.
        """
        from repro.model.delta import SchemaDelta

        return SchemaDelta.diff(base, self.schema)
