"""Tests for the benchmark-history ledger and perf gate (repro.obs.perf)."""

import json

import pytest

from repro.obs.perf import (
    BenchRecord,
    append_records,
    compare,
    environment_fingerprint,
    load_history,
    main,
    new_run_id,
)
from repro.obs.schema import SchemaValidationError


def _seed(path, runs):
    """Append one record per (run_id, name, value) triple."""
    for run_id, name, value in runs:
        append_records(
            path, [BenchRecord(name=name, value=value, run=run_id)]
        )


class TestLedger:
    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        record = BenchRecord(
            name="bench.cold", value=1.25, extra={"e": 3, "quick": False}
        )
        assert append_records(path, [record]) == 1
        (loaded,) = load_history(path)
        assert loaded.name == "bench.cold"
        assert loaded.value == 1.25
        assert loaded.run == record.run
        assert loaded.extra == {"e": 3, "quick": False}
        assert loaded.env == environment_fingerprint()

    def test_missing_history_is_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_rows_are_schema_validated_on_write_and_read(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        with pytest.raises(SchemaValidationError):
            append_records(path, [{"name": "x"}])  # missing keys
        path.write_text(json.dumps({"name": "x", "value": -1}) + "\n")
        with pytest.raises(SchemaValidationError):
            load_history(path)

    def test_run_ids_are_unique(self):
        assert new_run_id() != new_run_id()


class TestCompare:
    def test_injected_2x_slowdown_fails(self, tmp_path):
        # Acceptance: a 2x slowdown against a flat baseline must gate.
        path = tmp_path / "h.jsonl"
        _seed(
            path,
            [
                ("r0", "bench.cold", 1.0),
                ("r1", "bench.cold", 1.0),
                ("r2", "bench.cold", 1.0),
                ("r3", "bench.cold", 2.0),
            ],
        )
        result = compare(load_history(path))
        assert not result.ok
        (verdict,) = result.regressions
        assert verdict.name == "bench.cold"
        assert verdict.ratio == pytest.approx(2.0)

    def test_noisy_flat_history_passes(self, tmp_path):
        # Acceptance: +-10% noise around a flat trend must NOT gate.
        path = tmp_path / "h.jsonl"
        values = [1.0, 1.1, 0.9, 1.05, 0.95, 1.08]
        _seed(
            path,
            [(f"r{i}", "bench.warm", v) for i, v in enumerate(values)],
        )
        result = compare(load_history(path))
        assert result.ok
        (verdict,) = result.verdicts
        assert not verdict.regressed
        assert verdict.baseline == pytest.approx(1.0)

    def test_first_run_warns_but_passes(self, tmp_path):
        path = tmp_path / "h.jsonl"
        _seed(path, [("r0", "bench.cold", 1.0)])
        result = compare(load_history(path))
        assert result.ok
        (verdict,) = result.verdicts
        assert verdict.baseline is None and verdict.prior_runs == 0
        assert "no baseline yet" in verdict.describe(0.25)

    def test_new_benchmark_in_old_history_is_not_gated(self, tmp_path):
        path = tmp_path / "h.jsonl"
        _seed(
            path,
            [
                ("r0", "bench.cold", 1.0),
                ("r1", "bench.cold", 1.0),
                ("r1", "bench.new", 9.9),
            ],
        )
        result = compare(load_history(path))
        assert result.ok
        by_name = {verdict.name: verdict for verdict in result.verdicts}
        assert by_name["bench.new"].baseline is None
        assert by_name["bench.cold"].baseline == 1.0

    def test_baseline_is_median_not_mean(self, tmp_path):
        # One catastrophic CI hiccup in history must not drag the
        # baseline up (a mean would).
        path = tmp_path / "h.jsonl"
        _seed(
            path,
            [
                ("r0", "b", 1.0),
                ("r1", "b", 1.0),
                ("r2", "b", 50.0),  # the hiccup
                ("r3", "b", 1.0),
                ("r4", "b", 1.3),
            ],
        )
        result = compare(load_history(path))
        (verdict,) = result.verdicts
        assert verdict.baseline == pytest.approx(1.0)
        assert verdict.regressed  # 1.3 vs median 1.0 exceeds 25%

    def test_different_environment_is_excluded_from_baseline(self, tmp_path):
        path = tmp_path / "h.jsonl"
        other_env = dict(environment_fingerprint(), machine="emulated-arch")
        append_records(
            path,
            [BenchRecord(name="b", value=0.1, run="r0", env=other_env)],
        )
        _seed(path, [("r1", "b", 1.0), ("r2", "b", 1.05)])
        result = compare(load_history(path))
        (verdict,) = result.verdicts
        # r0's 0.1 (other machine) is ignored; baseline is r1's 1.0.
        assert verdict.baseline == pytest.approx(1.0)
        assert not verdict.regressed

    def test_explicit_run_selection(self, tmp_path):
        path = tmp_path / "h.jsonl"
        _seed(path, [("r0", "b", 1.0), ("r1", "b", 3.0), ("r2", "b", 1.0)])
        assert not compare(load_history(path), run="r1").ok
        assert compare(load_history(path), run="r2").ok
        with pytest.raises(ValueError):
            compare(load_history(path), run="nope")

    def test_empty_history_compares_ok(self):
        assert compare([]).ok


class TestCli:
    def test_compare_exit_codes(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        _seed(path, [("r0", "b", 1.0), ("r1", "b", 1.0)])
        assert main(["compare", "--history", str(path)]) == 0
        assert "no regressions" in capsys.readouterr().out
        _seed(path, [("r2", "b", 2.0)])
        assert main(["compare", "--history", str(path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_missing_history_passes(self, tmp_path, capsys):
        absent = tmp_path / "absent.jsonl"
        assert main(["compare", "--history", str(absent)]) == 0
        assert "no history yet" in capsys.readouterr().out

    def test_tolerance_flag(self, tmp_path):
        path = tmp_path / "h.jsonl"
        _seed(path, [("r0", "b", 1.0), ("r1", "b", 1.2)])
        assert main(["compare", "--history", str(path)]) == 0
        assert (
            main(
                ["compare", "--history", str(path), "--tolerance", "0.1"]
            )
            == 1
        )

    def test_show_lists_runs(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        _seed(path, [("r0", "b", 1.0), ("r1", "b", 1.5)])
        assert main(["show", "--history", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run r0" in out and "run r1" in out
        assert "b: 1.5" in out
