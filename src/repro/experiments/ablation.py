"""Ablation studies for the design choices DESIGN.md calls out.

The paper mentions (Section 7) that the CON and AGG functions were
chosen among ~10 and ~20 alternatives.  These ablations quantify why the
chosen configuration wins:

* **A1 — partial-order variants**: the default reconstructed Figure 3
  order vs. a flat order (semantic length only), a rank-only order, and
  a forced total order, scored on the workload.
* **A2 — caution sets on/off**: Section 4.1 predicts plausible answers
  are lost when the distributivity-based pruning (Algorithm 1's line 9)
  runs without caution sets.
* **A3 — scalability**: recursive calls and time vs schema size on
  random schemas.
* **A4 — Algorithm 2 vs exhaustive enumeration**: identical optimal
  answers for a fraction of the node visits.
"""

from __future__ import annotations

import dataclasses

from repro.algebra.order import (
    PartialOrder,
    default_order,
    flat_order,
    rank_order,
    total_order,
)
from repro.core.completion import CompletionSearch
from repro.core.domain import DomainKnowledge
from repro.core.enumerate import enumerate_consistent_paths
from repro.core.parser import parse_path_expression
from repro.core.target import RelationshipTarget
from repro.experiments.metrics import average, precision, recall
from repro.experiments.oracle import DesignerOracle
from repro.model.graph import SchemaGraph
from repro.model.schema import Schema

__all__ = [
    "OrderAblationRow",
    "run_order_ablation",
    "CautionAblationRow",
    "run_caution_ablation",
    "ExhaustiveComparisonRow",
    "run_exhaustive_comparison",
    "candidate_orders",
]


def candidate_orders() -> tuple[PartialOrder, ...]:
    """The AGG alternatives compared in A1."""
    return (
        default_order(),
        rank_order(),
        rank_order(strict_possibly=True),
        flat_order(),
        total_order(),
    )


@dataclasses.dataclass(frozen=True)
class OrderAblationRow:
    """Workload effectiveness of one partial-order variant."""

    order_name: str
    e: int
    average_recall: float
    average_precision: float
    average_returned: float


def run_order_ablation(
    schema: Schema,
    oracle: DesignerOracle,
    e: int = 1,
    domain_knowledge: DomainKnowledge | None = None,
) -> list[OrderAblationRow]:
    """Score every candidate order on the workload at one E."""
    rows: list[OrderAblationRow] = []
    graph = SchemaGraph(schema)
    if domain_knowledge is not None:
        graph = domain_knowledge.restrict(graph)
    for order in candidate_orders():
        search = CompletionSearch(graph, order=order, e=e)
        recalls: list[float] = []
        precisions: list[float] = []
        returned_counts: list[float] = []
        for query in oracle:
            expression = parse_path_expression(query.text)
            result = search.run(
                expression.root, RelationshipTarget(expression.last_name)
            )
            returned = [str(path) for path in result.paths]
            intent = query.final_intent(returned)
            recalls.append(recall(intent, returned))
            precisions.append(precision(intent, returned))
            returned_counts.append(float(len(returned)))
        rows.append(
            OrderAblationRow(
                order_name=order.name,
                e=e,
                average_recall=average(recalls),
                average_precision=average(precisions),
                average_returned=average(returned_counts),
            )
        )
    return rows


@dataclasses.dataclass(frozen=True)
class CautionAblationRow:
    """Effect of disabling caution sets on one query."""

    query_id: str
    paths_with_caution: int
    paths_without_caution: int
    lost_paths: tuple[str, ...]


def run_caution_ablation(
    schema: Schema,
    oracle: DesignerOracle,
    e: int = 1,
) -> list[CautionAblationRow]:
    """Compare completions with and without caution sets (A2)."""
    graph = SchemaGraph(schema)
    with_caution = CompletionSearch(graph, e=e, use_caution_sets=True)
    without_caution = CompletionSearch(graph, e=e, use_caution_sets=False)
    rows: list[CautionAblationRow] = []
    for query in oracle:
        expression = parse_path_expression(query.text)
        target = RelationshipTarget(expression.last_name)
        full = {
            str(path)
            for path in with_caution.run(expression.root, target).paths
        }
        reduced = {
            str(path)
            for path in without_caution.run(expression.root, target).paths
        }
        rows.append(
            CautionAblationRow(
                query_id=query.query_id,
                paths_with_caution=len(full),
                paths_without_caution=len(reduced),
                lost_paths=tuple(sorted(full - reduced)),
            )
        )
    return rows


@dataclasses.dataclass(frozen=True)
class ExhaustiveComparisonRow:
    """Algorithm 2 vs brute-force enumeration on one query (A4)."""

    query_id: str
    algorithm_paths: int
    optimal_paths_by_enumeration: int
    agrees: bool
    algorithm_calls: int
    enumerated_paths: int


def run_exhaustive_comparison(
    schema: Schema,
    oracle: DesignerOracle,
    e: int = 1,
    enumeration_cap: int = 500_000,
    max_visits: int | None = None,
) -> list[ExhaustiveComparisonRow]:
    """Check Algorithm 2's answers against ground truth (A4).

    Ground truth: enumerate Ψ, label every path, keep the AGG*-optimal
    ones, apply preemption.  ``agrees`` asserts the paper-faithful
    guarantee: the algorithm's answers are a *sound, nonempty* subset of
    the global optimum — every returned path and label key is globally
    optimal, and something is found whenever the optimum is nonempty.
    (Completeness over tied/incomparable optimal labels is not
    guaranteed: the best[]-bound with label-level caution sets can drop
    realizations whose dominating prefix cannot continue acyclically —
    see DESIGN.md Section 4 and workload q10.)
    """
    from repro.algebra.agg import Aggregator
    from repro.core.inheritance_criterion import apply_preemption

    graph = SchemaGraph(schema)
    search = CompletionSearch(graph, e=e)
    aggregator = Aggregator(e=e)
    rows: list[ExhaustiveComparisonRow] = []
    for query in oracle:
        expression = parse_path_expression(query.text)
        target = RelationshipTarget(expression.last_name)
        result = search.run(expression.root, target)
        everything = enumerate_consistent_paths(
            graph,
            expression.root,
            target,
            max_paths=enumeration_cap,
            max_visits=max_visits,
        )
        optimal_keys = {
            label.key
            for label in aggregator.aggregate(
                [path.label() for path in everything]
            )
        }
        optimal = [
            path for path in everything if path.label().key in optimal_keys
        ]
        optimal, _ = apply_preemption(optimal)
        algorithm_keys = {path.label().key for path in result.paths}
        algorithm_set = {str(path) for path in result.paths}
        optimal_set = {str(path) for path in optimal}
        agrees = (
            algorithm_keys <= optimal_keys
            and algorithm_set <= optimal_set
            and bool(algorithm_set) == bool(optimal_set)
        )
        rows.append(
            ExhaustiveComparisonRow(
                query_id=query.query_id,
                algorithm_paths=len(result.paths),
                optimal_paths_by_enumeration=len(optimal),
                agrees=agrees,
                algorithm_calls=result.stats.recursive_calls,
                enumerated_paths=len(everything),
            )
        )
    return rows
