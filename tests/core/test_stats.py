"""Tests for TraversalStats aggregation and timing conventions."""

import pytest

from repro.core.stats import TraversalStats


class TestAdd:
    def test_per_run_counters_sum(self):
        total = TraversalStats(recursive_calls=3, edges_considered=7)
        total.add(TraversalStats(recursive_calls=5, edges_considered=1))
        assert total.recursive_calls == 8
        assert total.edges_considered == 8

    def test_shared_compile_seconds_is_not_double_counted(self):
        # Regression: every member of a batch over one compiled artifact
        # carries the same compile_seconds; add() must max, not sum.
        total = TraversalStats(compile_seconds=5.0)
        total.add(TraversalStats(compile_seconds=5.0))
        assert total.compile_seconds == 5.0

    def test_shared_field_takes_the_larger_artifact_cost(self):
        total = TraversalStats(compile_seconds=2.0)
        total.add(TraversalStats(compile_seconds=5.0))
        assert total.compile_seconds == 5.0

    def test_elapsed_stays_additive(self):
        total = TraversalStats(elapsed_seconds=0.25)
        total.add(TraversalStats(elapsed_seconds=0.75))
        assert total.elapsed_seconds == 1.0

    def test_batch_of_many_runs(self):
        total = TraversalStats()
        for _ in range(10):
            total.add(
                TraversalStats(recursive_calls=4, compile_seconds=0.125)
            )
        assert total.recursive_calls == 40
        assert total.compile_seconds == 0.125


class TestSecondsPerCall:
    def test_average_over_calls(self):
        stats = TraversalStats(recursive_calls=4, elapsed_seconds=2.0)
        assert stats.seconds_per_call == 0.5

    def test_zero_when_no_calls(self):
        # Documented convention: a validated complete expression or a
        # pure cache hit does no traversal, so the per-call average is
        # defined as 0.0 rather than a ZeroDivisionError.
        stats = TraversalStats(recursive_calls=0, elapsed_seconds=0.5)
        assert stats.seconds_per_call == 0.0

    def test_elapsed_still_reported_separately(self):
        stats = TraversalStats(recursive_calls=0, elapsed_seconds=0.5)
        as_dict = stats.as_dict()
        assert as_dict["seconds_per_call"] == 0.0
        assert as_dict["elapsed_seconds"] == 0.5
        assert "time=500.00ms" in str(stats)


class TestRecordTo:
    def test_record_to_delegates_to_registry(self):
        class Probe:
            def __init__(self):
                self.seen = []

            def record_completion(self, stats, cached=None):
                self.seen.append(stats)

        probe = Probe()
        stats = TraversalStats(recursive_calls=2)
        stats.record_to(probe)
        assert probe.seen == [stats]
