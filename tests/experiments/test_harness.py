"""Tests for the shared experiment runner (on the fast university
schema plus the E=1 CUPID point)."""

import pytest

from repro.experiments.harness import run_workload, sweep_e
from repro.experiments.oracle import DesignerOracle, WorkloadQuery


@pytest.fixture()
def mini_oracle():
    """A two-query workload on the university schema."""
    return DesignerOracle(
        [
            WorkloadQuery(
                query_id="u1",
                text="ta ~ name",
                intended=(
                    "ta@>grad@>student@>person.name",
                    "ta@>instructor@>teacher@>employee@>person.name",
                ),
            ),
            WorkloadQuery(
                query_id="u2",
                text="department ~ ssn",
                intended=("department$>professor@>teacher@>employee@>person.ssn",),
                also_plausible=("department.student@>person.ssn",),
            ),
        ]
    )


class TestRunWorkload:
    def test_outcomes_scored(self, university, mini_oracle):
        outcomes = run_workload(university, mini_oracle, e=1)
        assert len(outcomes) == 2
        by_id = {o.query.query_id: o for o in outcomes}
        assert by_id["u1"].recall == 1.0
        assert by_id["u1"].precision == 1.0
        assert by_id["u1"].returned_count == 2

    def test_also_plausible_inert_until_returned(self, university, mini_oracle):
        outcomes = run_workload(university, mini_oracle, e=1)
        u2 = next(o for o in outcomes if o.query.query_id == "u2")
        # at E=1 only the professor chain returns; the also-plausible
        # student path is not in S, so U stays at the single intent
        assert u2.precision == 1.0
        assert len(u2.intent) == 1

    def test_also_plausible_extends_intent_when_returned(
        self, university, mini_oracle
    ):
        outcomes = run_workload(university, mini_oracle, e=2)
        u2 = next(o for o in outcomes if o.query.query_id == "u2")
        # at E=2 the student path is returned and accepted via the
        # U0-extension rule: U grows to 2, precision = 2/|S|
        assert "department.student@>person.ssn" in u2.returned
        assert len(u2.intent) == 2
        assert u2.precision == pytest.approx(2 / len(u2.returned))

    def test_mean_returned_length(self, university, mini_oracle):
        outcomes = run_workload(university, mini_oracle, e=1)
        u1 = next(o for o in outcomes if o.query.query_id == "u1")
        assert u1.mean_returned_length == pytest.approx(4.5)

    def test_cost_counters(self, university, mini_oracle):
        for outcome in run_workload(university, mini_oracle, e=1):
            assert outcome.recursive_calls > 0
            assert outcome.elapsed_seconds >= 0


class TestSweep:
    def test_points_cover_requested_es(self, university, mini_oracle):
        points = sweep_e(university, mini_oracle, e_values=(1, 2))
        assert [point.e for point in points] == [1, 2]

    def test_averages_bounded(self, university, mini_oracle):
        for point in sweep_e(university, mini_oracle, e_values=(1, 2)):
            assert 0.0 <= point.average_recall <= 1.0
            assert 0.0 <= point.average_precision <= 1.0
            assert point.average_returned >= 1.0

    def test_returned_grows_with_e(self, university, mini_oracle):
        points = sweep_e(university, mini_oracle, e_values=(1, 3))
        assert points[1].average_returned >= points[0].average_returned
