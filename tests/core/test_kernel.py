"""The flat search kernel — equivalence, tables, and selection.

The kernel contract is *byte-identity*: ``kernel="flat"`` must return
exactly what the interpreted closure loop returns — ranked paths,
labels, semantic lengths, anytime flags, and every traversal counter —
across schemas, E levels, ablation flags, depth caps, and budget
truncation points.  These tests enforce that property over the bundled
schemas and a family of generated random schemas, verify the
precomputed lstate composition tables against the real
:meth:`PathLabel.extend`, and pin the selection plumbing: the knob, the
``REPRO_KERNEL`` environment override, the cache-key separation between
kernels, and the audited-search fallback to the interpreted loop.
"""

from __future__ import annotations

import itertools

import pytest

from repro.algebra.connectors import ALL_CONNECTORS, PRIMARY_CONNECTORS
from repro.algebra.labels import PathLabel
from repro.algebra.semantic_length import SemanticLengthState
from repro.core import compiled as compiled_mod
from repro.core.audit import SearchAuditLog, use_audit
from repro.core.closure import (
    _LAST_CLASS_BY_INDEX,
    _LAST_OTHER,
    _N_CONNECTORS,
)
from repro.core.compiled import CompiledSchema
from repro.core.engine import Disambiguator
from repro.core.kernel import (
    EXT_DELTA,
    EXT_LSTATE,
    KERNEL_ENV_VAR,
    KERNEL_MODES,
    kernel_backend,
    resolve_kernel,
)
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.resilience.budget import Budget
from repro.schemas.generator import GeneratorConfig, generate_schema

QUERIES = [
    "ta ~ name",
    "student.take.teacher",
    "student ~ dept",
    "teacher ~ name",
]


def _snapshot(result):
    return (
        tuple(str(path) for path in result.paths),
        tuple(str(label) for label in result.labels),
        tuple(str(label.semantic_length) for label in result.labels),
        result.exhausted,
        result.truncation_reason,
    )


def _stats(result):
    s = result.stats
    return (
        s.recursive_calls,
        s.edges_considered,
        s.complete_paths_found,
        s.pruned_visited,
        s.pruned_target_bound,
        s.pruned_best_bound,
        s.rescued_by_caution,
        s.nodes_pruned_reachability,
        s.nodes_pruned_bound,
    )


def _outcome(engine, text, budget=None):
    """Snapshot+stats, or the typed error — both must match exactly."""
    try:
        result = engine.complete(text, budget=budget)
    except ReproError as err:
        return ("error", type(err).__name__, str(err))
    return (_snapshot(result), _stats(result))


def _paired_engines(schema, **kwargs):
    """Fresh interpreted/flat engines that share no registry artifact.

    Each gets its own :class:`CompiledSchema` built after an
    ``invalidate()`` so neither inherits the other's warm closure
    tables — the comparison covers cold table builds too.
    """
    compiled_mod.invalidate()
    interpreted = Disambiguator(
        CompiledSchema(schema), kernel="interpreted", **kwargs
    )
    compiled_mod.invalidate()
    flat = Disambiguator(CompiledSchema(schema), kernel="flat", **kwargs)
    return interpreted, flat


class TestKernelSelection:
    def test_resolve_explicit_env_and_default(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert resolve_kernel(None) == "interpreted"
        assert resolve_kernel("flat") == "flat"
        monkeypatch.setenv(KERNEL_ENV_VAR, "flat")
        assert resolve_kernel(None) == "flat"
        # Explicit beats the environment.
        assert resolve_kernel("interpreted") == "interpreted"

    def test_resolve_rejects_unknown_mode(self, monkeypatch):
        with pytest.raises(ValueError, match="kernel"):
            resolve_kernel("native")
        monkeypatch.setenv(KERNEL_ENV_VAR, "bogus")
        with pytest.raises(ValueError, match="kernel"):
            resolve_kernel(None)

    def test_engine_honors_env_override(self, university, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "flat")
        assert Disambiguator(university).kernel == "flat"
        monkeypatch.delenv(KERNEL_ENV_VAR)
        assert Disambiguator(university).kernel == "interpreted"

    def test_backend_reports_a_known_implementation(self):
        assert kernel_backend() in ("python", "compiled")

    def test_kernel_is_part_of_the_cache_key(self, university):
        compiled = CompiledSchema(university)
        interpreted = Disambiguator(compiled, kernel="interpreted")
        flat = Disambiguator(compiled, kernel="flat")
        text = "ta ~ name"
        assert interpreted._cache_key(text) != flat._cache_key(text)
        # Sharing one artifact, the two kernels fill distinct entries —
        # an A/B run never serves the other side's warm results.
        compiled.cache.clear()
        interpreted.complete(text)
        assert len(compiled.cache) == 1
        flat.complete(text)
        assert len(compiled.cache) == 2

    def test_derived_engines_inherit_the_kernel(self, university):
        engine = Disambiguator(CompiledSchema(university), kernel="flat")
        assert engine.with_e(3).kernel == "flat"


class TestExtensionTables:
    def test_tables_match_label_extend_for_every_state(self):
        """EXT_LSTATE/EXT_DELTA are ``PathLabel.extend`` precomputed.

        For every lstate (composed connector × last-edge seam class,
        plus the empty state) and every edge connector, the table's
        composed connector, new seam class, and length delta must equal
        what the real label algebra computes.
        """
        # A representative last connector per seam class: classes 0..3
        # are the singleton collapsible connectors; class 4 ("other")
        # can be any connector that classifies as 4.
        others = [
            index
            for index in range(_N_CONNECTORS)
            if _LAST_CLASS_BY_INDEX[index] == _LAST_OTHER
        ]
        assert others, "expected at least one non-collapsible connector"
        representative = list(PRIMARY_CONNECTORS[:4]) + [
            ALL_CONNECTORS[others[0]]
        ]
        base_length = 5
        checked = 0
        for ci in range(_N_CONNECTORS):
            for ls in range(6):
                if ls == 0:
                    state = SemanticLengthState()
                    length = 0
                else:
                    last = representative[ls - 1]
                    state = SemanticLengthState(base_length, last, last)
                    length = base_length
                label = PathLabel(ALL_CONNECTORS[ci], state)
                row = (ci * 6 + ls) * _N_CONNECTORS
                for c in range(_N_CONNECTORS):
                    extended = label.extend(ALL_CONNECTORS[c])
                    new_lstate = EXT_LSTATE[row + c]
                    assert extended.connector is ALL_CONNECTORS[
                        new_lstate // 6
                    ], (ci, ls, c)
                    assert new_lstate % 6 - 1 == _LAST_CLASS_BY_INDEX[c]
                    assert (
                        extended.semantic_length - length
                        == EXT_DELTA[row + c]
                    ), (ci, ls, c)
                    checked += 1
        assert checked == _N_CONNECTORS * 6 * _N_CONNECTORS


class TestEquivalence:
    @pytest.mark.parametrize("e", (1, 2, 3))
    @pytest.mark.parametrize("caution", (True, False))
    def test_university_byte_identity(self, university, e, caution):
        interpreted, flat = _paired_engines(
            university, e=e, use_caution_sets=caution
        )
        for text in QUERIES:
            assert _outcome(flat, text) == _outcome(interpreted, text), (
                text,
                e,
                caution,
            )

    @pytest.mark.parametrize("max_depth", (2, 4, None))
    def test_cupid_depth_caps(self, cupid, oracle_texts, max_depth):
        interpreted, flat = _paired_engines(cupid, e=2, max_depth=max_depth)
        for text in oracle_texts[:5]:
            assert _outcome(flat, text) == _outcome(interpreted, text), (
                text,
                max_depth,
            )

    @pytest.mark.parametrize("seed", (0, 3, 11))
    def test_generated_schemas_byte_identity(self, seed):
        """Property check over random schemas the kernel never saw."""
        schema = generate_schema(
            GeneratorConfig(classes=18, seed=seed, association_factor=1.2)
        )
        texts = [
            "cls_000 ~ label",
            "cls_005 ~ label",
            "cls_010 ~ rel_000",
            "cls_003 ~ attr_000",
        ]
        for e in (1, 3):
            interpreted, flat = _paired_engines(schema, e=e)
            for text in texts:
                assert _outcome(flat, text) == _outcome(
                    interpreted, text
                ), (seed, e, text)

    def test_budget_truncation_points_byte_identity(self, cupid):
        """Anytime truncation at many node budgets: identical best-so-far
        answers, truncation reasons, and counters at every trip point."""
        text = "experiment ~ conductance"
        truncated = 0
        for limit in (1, 2, 5, 10, 40, 200):
            interpreted, flat = _paired_engines(cupid, e=3)
            budget = Budget(max_nodes=limit, partial_ok=True)
            a = _outcome(interpreted, text, budget=budget)
            b = _outcome(
                flat, text, budget=Budget(max_nodes=limit, partial_ok=True)
            )
            assert a == b, limit
            if a[0][4] is not None:  # truncation_reason
                truncated += 1
        assert truncated > 0, "no budget actually tripped"

    def test_hard_budget_raises_identically(self, cupid):
        interpreted, flat = _paired_engines(cupid, e=3)
        budget = Budget(max_nodes=3, partial_ok=False)
        a = _outcome(interpreted, "experiment ~ conductance", budget=budget)
        b = _outcome(
            flat,
            "experiment ~ conductance",
            budget=Budget(max_nodes=3, partial_ok=False),
        )
        assert a == b
        assert a[0] == "error"


class TestAuditFallback:
    def test_audited_searches_run_interpreted(self, university):
        """A live audit log silences the flat kernel (its decision-site
        instrumentation lives in the interpreted loop) — and the results
        stay byte-identical either way."""
        # Pin closure pruning: the flat kernel only runs where the
        # closure loop would, so the REPRO_PRUNING=none CI leg must not
        # leak into this test's precondition that flat actually fires.
        engine = Disambiguator(
            CompiledSchema(university), kernel="flat", pruning="closure"
        )
        with use_metrics(MetricsRegistry()) as metrics:
            with use_audit(SearchAuditLog()):
                audited = engine.complete("ta ~ name")
            assert metrics.counter("kernel.flat_runs").value == 0
            engine.compiled.cache.clear()
            plain = engine.complete("ta ~ name")
            assert metrics.counter("kernel.flat_runs").value > 0
        assert _snapshot(audited) == _snapshot(plain)


@pytest.fixture(scope="session")
def oracle_texts():
    from repro.experiments.workload import build_cupid_workload

    return [query.text for query in build_cupid_workload().queries]


def test_kernel_modes_are_the_documented_pair():
    assert KERNEL_MODES == ("interpreted", "flat")
