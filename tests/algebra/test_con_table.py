"""Tests for Table 1 (CON_c), including the paper's worked examples and
the exhaustive algebraic checks."""

import itertools

import pytest

from repro.algebra.con_table import BASE_TABLE, con_c, con_c_sequence
from repro.algebra.connectors import ALL_CONNECTORS, Connector

ISA = Connector.ISA
MAY = Connector.MAY_BE
HP = Connector.HAS_PART
PO = Connector.IS_PART_OF
AS = Connector.ASSOC
SB = Connector.SHARES_SUBPARTS
SP = Connector.SHARES_SUPERPARTS
IN = Connector.INDIRECT_ASSOC


class TestPaperExamples:
    """Every composition example stated in Section 3.3.1."""

    def test_haspart_transitive(self):
        # A Has-Part B, B Has-Part C => A Has-Part C
        assert con_c(HP, HP) is HP

    def test_assoc_then_maybe_is_possibly_assoc(self):
        # course . teacher <@ professor => course .* professor
        assert con_c(AS, MAY) is Connector.POSSIBLY_ASSOC

    def test_shares_subparts(self):
        # engine $> screw <$ chassis => engine .SB chassis
        assert con_c(HP, PO) is SB

    def test_shares_superparts(self):
        # motor <$ assembly $> shaft => motor .SP shaft
        assert con_c(PO, HP) is SP

    def test_indirect_association(self):
        # dept . student . course => dept .. course
        assert con_c(AS, AS) is IN


class TestIdentity:
    def test_isa_is_left_identity(self):
        for connector in ALL_CONNECTORS:
            assert con_c(ISA, connector) is connector

    def test_isa_is_right_identity(self):
        for connector in ALL_CONNECTORS:
            assert con_c(connector, ISA) is connector


class TestAssociativity:
    def test_exhaustive_over_all_triples(self):
        """Property 1, machine-checked over all 14^3 = 2744 triples."""
        for a, b, c in itertools.product(ALL_CONNECTORS, repeat=3):
            left = con_c(con_c(a, b), c)
            right = con_c(a, con_c(b, c))
            assert left is right, (
                f"CON_c not associative at ({a.symbol}, {b.symbol}, "
                f"{c.symbol}): {left.symbol} != {right.symbol}"
            )


class TestClosure:
    def test_sigma_closed_under_con_c(self):
        for a, b in itertools.product(ALL_CONNECTORS, repeat=2):
            assert con_c(a, b) in ALL_CONNECTORS

    def test_base_table_covers_exactly_the_base_connectors(self):
        bases = {c for c in ALL_CONNECTORS if not c.is_possibly}
        assert set(BASE_TABLE) == bases
        for row in BASE_TABLE.values():
            assert set(row) == bases


class TestPossiblyRule:
    def test_any_possibly_argument_stars_the_result(self):
        for a, b in itertools.product(ALL_CONNECTORS, repeat=2):
            result = con_c(a, b)
            if a.is_possibly or b.is_possibly:
                assert result.is_possibly, (a.symbol, b.symbol, result.symbol)

    def test_possibly_never_produces_taxonomic(self):
        for a, b in itertools.product(ALL_CONNECTORS, repeat=2):
            if a.is_possibly or b.is_possibly:
                assert not con_c(a, b).is_taxonomic

    def test_result_base_matches_base_composition(self):
        for a, b in itertools.product(ALL_CONNECTORS, repeat=2):
            assert con_c(a, b).base is con_c(a.base, b.base).base


class TestMayBePrefix:
    """A May-Be anywhere makes the downstream relationship Possibly."""

    def test_maybe_then_haspart(self):
        assert con_c(MAY, HP) is Connector.POSSIBLY_HAS_PART

    def test_maybe_then_assoc(self):
        assert con_c(MAY, AS) is Connector.POSSIBLY_ASSOC

    def test_maybe_then_isa_stays_maybe(self):
        assert con_c(MAY, ISA) is MAY

    def test_maybe_transitive(self):
        assert con_c(MAY, MAY) is MAY

    def test_isa_then_maybe_is_maybe(self):
        assert con_c(ISA, MAY) is MAY


class TestSequences:
    def test_empty_sequence_is_identity(self):
        assert con_c_sequence([]) is ISA

    def test_singleton(self):
        assert con_c_sequence([HP]) is HP

    def test_flagship_ta_chain(self):
        # ta @> grad @> student @> person . name => association
        assert con_c_sequence([ISA, ISA, ISA, AS]) is AS

    def test_less_plausible_course_chain(self):
        # ta @> grad @> student . take . name => indirect association
        assert con_c_sequence([ISA, ISA, AS, AS]) is IN

    def test_fold_order_is_irrelevant(self):
        sequence = [HP, PO, AS, MAY, HP, ISA, PO]
        left = con_c_sequence(sequence)
        # fold right-to-left instead
        right = sequence[-1]
        for connector in reversed(sequence[:-1]):
            right = con_c(connector, right)
        assert left is right


class TestDuality:
    """The $>/<$ and .SB/.SP duality the table was reconstructed from."""

    DUAL = {
        ISA: ISA, MAY: MAY, HP: PO, PO: HP, AS: AS, SB: SP, SP: SB, IN: IN,
    }

    @pytest.mark.parametrize("a", list(BASE_TABLE))
    @pytest.mark.parametrize("b", list(BASE_TABLE))
    def test_dual_of_composition_is_composition_of_duals(self, a, b):
        dual = self.DUAL
        result = con_c(a, b)
        if result.is_possibly:
            expected = con_c(dual[a], dual[b])
            assert expected.is_possibly
            assert dual[result.base] is expected.base
        else:
            assert dual[result] is con_c(dual[a], dual[b])
