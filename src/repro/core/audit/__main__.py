"""``python -m repro.core.audit`` — the cross-mode diff CLI.

A separate ``__main__`` module (rather than a guard in the package
body) so the canonical :mod:`repro.core.audit` instance — whose
ambient contextvar the search loops read — is the one that runs; a
module executed directly under ``-m`` would otherwise be a second
copy with its own, never-consulted, active-log variable.
"""

from repro.core.audit import main

if __name__ == "__main__":
    raise SystemExit(main())
