"""A registry of named counters, gauges, and histograms.

:class:`~repro.core.stats.TraversalStats` is the per-run carrier of the
paper's Section 5.4 cost counters; this registry is where those
counters *accumulate* across runs — recursive-call histograms per
query, prune-reason counters, cache hit ratio, compile seconds — so a
workload, a session, a CLI invocation, or a whole experiment sweep can
report one coherent summary dict.

Like the tracer, the ambient default (:func:`get_metrics`) is a shared
no-op registry: instrumented code always records, but recording into
:class:`NullMetricsRegistry` costs one attribute lookup and one no-op
call.  Install a real :class:`MetricsRegistry` with
``with use_metrics(MetricsRegistry()):``.

The :meth:`MetricsRegistry.as_dict` summary conforms to the checked-in
``metrics_summary.schema.json`` (see :mod:`repro.obs.schema`); CI
validates exported summaries against it so the format cannot drift
silently.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.core.stats import TraversalStats

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "SUMMARY_VERSION",
    "get_metrics",
    "labelled",
    "split_labels",
    "use_metrics",
]

#: Histograms keep at most this many raw observations for percentiles;
#: count/sum/min/max stay exact beyond it.  Beyond the bound the
#: reservoir is a *uniform* sample of the whole stream (Algorithm R),
#: not a prefix — see :meth:`Histogram.observe`.
RESERVOIR_SIZE = 4096

#: Version of the :meth:`MetricsRegistry.as_dict` summary format.
#: Bumped to 2 when ``p99`` joined the histogram snapshots.
SUMMARY_VERSION = 2

#: Separator between a metric's base name and its encoded label pairs
#: (see :func:`labelled`).  ``|`` is illegal in Prometheus metric names,
#: so un-labelled names can never collide with the encoding.
LABEL_SEPARATOR = "|"


def _clean_label_value(value: object) -> str:
    """A label value with the encoding's structural characters removed."""
    text = str(value)
    for char in (LABEL_SEPARATOR, ",", "=", "\n"):
        text = text.replace(char, "_")
    return text


def labelled(name: str, **labels: object) -> str:
    """Encode request-scoped labels into a registry metric name.

    The registry itself is a flat name→metric map (which keeps the hot
    path one dict lookup); labels ride inside the name as
    ``name|key=value,key=value`` with keys sorted, so the same label
    set always resolves to the same series.  The serving tier uses this
    for per-route/per-status/per-tenant series::

        registry.counter(labelled("http.requests", route="/v1/complete",
                                  status=200)).inc()

    :func:`split_labels` is the inverse;
    :func:`repro.obs.promtext.render_prometheus` renders encoded names
    as proper ``family{key="value"}`` exposition samples.
    """
    if not labels:
        return name
    encoded = ",".join(
        f"{key}={_clean_label_value(labels[key])}" for key in sorted(labels)
    )
    return f"{name}{LABEL_SEPARATOR}{encoded}"


def split_labels(name: str) -> tuple[str, dict[str, str]]:
    """Decode a :func:`labelled` name into ``(base_name, labels)``."""
    base, separator, encoded = name.partition(LABEL_SEPARATOR)
    if not separator or not encoded:
        return base, {}
    labels: dict[str, str] = {}
    for pair in encoded.split(","):
        key, _, value = pair.partition("=")
        labels[key] = value
    return base, labels


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value:g})"


class Gauge:
    """A named value that records its latest setting."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value:g})"


class Histogram:
    """A named distribution: exact count/sum/min/max plus a bounded
    reservoir of raw observations for percentiles.

    The reservoir is maintained with Vitter's Algorithm R, so once full
    it stays a uniform random sample of *every* observation seen —
    percentiles track distribution shifts however late they happen.
    (The earlier fill-once reservoir froze on the first 4096 samples
    and silently reported stale percentiles forever after.)  The RNG is
    seeded from the histogram name, so runs are reproducible.
    """

    __slots__ = (
        "name",
        "count",
        "total",
        "min",
        "max",
        "_values",
        "_random",
        "_lock",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._values: list[float] = []
        self._random = random.Random(f"repro.obs.histogram:{name}")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            if len(self._values) < RESERVOIR_SIZE:
                self._values.append(value)
            else:
                # Algorithm R: keep each of the count observations with
                # probability RESERVOIR_SIZE/count.
                slot = self._random.randrange(self.count)
                if slot < RESERVOIR_SIZE:
                    self._values[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the reservoir (q in 0..100)."""
        with self._lock:
            values = sorted(self._values)
        if not values:
            return 0.0
        rank = min(len(values) - 1, max(0, round(q / 100 * (len(values) - 1))))
        return values[rank]

    def snapshot(self) -> dict[str, float]:
        """Summary-dict entry for this histogram."""
        if not self.count:
            return {
                "count": 0,
                "sum": 0.0,
                "min": 0.0,
                "max": 0.0,
                "mean": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
            }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def cumulative_buckets(
        self, bounds: tuple[float, ...]
    ) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs ending with ``(inf, count)``.

        Derived from the reservoir: while the reservoir holds every
        observation the buckets are exact; once Algorithm R subsamples,
        intermediate buckets are scaled estimates while the terminal
        ``+Inf`` bucket stays the exact total count.  Counts are
        monotone non-decreasing by construction.
        """
        with self._lock:
            values = sorted(self._values)
            count = self.count
        scale = count / len(values) if values else 0.0
        buckets: list[tuple[float, int]] = []
        index = 0
        running = 0
        for bound in sorted(bounds):
            while index < len(values) and values[index] <= bound:
                index += 1
            running = max(running, min(count, round(index * scale)))
            buckets.append((bound, running))
        buckets.append((float("inf"), count))
        return buckets

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:g})"


class MetricsRegistry:
    """Get-or-create registry of named metrics (one namespace).

    A name is bound to one kind for the registry's lifetime; asking for
    the same name as a different kind raises ``TypeError`` (catching
    the classic counter-vs-histogram naming drift early).
    """

    is_noop = False

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type) -> Counter | Gauge | Histogram:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)  # type: ignore[return-value]

    # -- the TraversalStats feed --------------------------------------

    def record_completion(
        self, stats: "TraversalStats", cached: bool | None = None
    ) -> None:
        """Fold one completion's :class:`TraversalStats` into the registry.

        ``cached`` (when known) feeds the cache hit/miss counters and
        the derived ``cache.hit_ratio`` gauge.  Counter names mirror the
        stats fields under ``traversal.`` / ``prune.``; per-query
        distributions land in ``query.*`` histograms.

        A cache hit carries the *cold* run's counters (the paper's
        hardware-independent cost is identical warm and cold), so on
        ``cached=True`` the per-query histograms still observe them but
        the work counters — which measure traversal actually performed —
        are left untouched.
        """
        self.counter("completions").inc()
        if cached is not True:
            self.counter("traversal.recursive_calls").inc(stats.recursive_calls)
            self.counter("traversal.edges_considered").inc(
                stats.edges_considered
            )
            self.counter("traversal.complete_paths_found").inc(
                stats.complete_paths_found
            )
            self.counter("prune.visited").inc(stats.pruned_visited)
            self.counter("prune.target_bound").inc(stats.pruned_target_bound)
            self.counter("prune.best_bound").inc(stats.pruned_best_bound)
            self.counter("prune.caution_rescues").inc(stats.rescued_by_caution)
            self.counter("prune.preempted_paths").inc(stats.preempted_paths)
            self.counter("prune.reachability").inc(
                stats.nodes_pruned_reachability
            )
            self.counter("prune.bound").inc(stats.nodes_pruned_bound)
        self.histogram("query.recursive_calls").observe(stats.recursive_calls)
        self.histogram("query.elapsed_seconds").observe(stats.elapsed_seconds)
        if stats.cache_hits or stats.cache_misses:
            self.counter("cache.hits").inc(stats.cache_hits)
            self.counter("cache.misses").inc(stats.cache_misses)
        if cached is not None:
            self.counter("cache.hits" if cached else "cache.misses").inc()
        if stats.compile_seconds:
            self.gauge("compile.seconds").set(stats.compile_seconds)
        self._update_hit_ratio()

    def record_compile(self, seconds: float) -> None:
        """Record one schema compilation."""
        self.counter("compiles").inc()
        self.gauge("compile.seconds").set(seconds)
        self.histogram("compile.seconds_per_compile").observe(seconds)

    def record_cache(self, hit: bool) -> None:
        """Record one completion-cache lookup.

        Used by sub-completion entry points whose traversal counters are
        already folded into their parent completion's stats — recording
        the full stats there would double-count the traversal work.
        """
        self.counter("cache.hits" if hit else "cache.misses").inc()
        self._update_hit_ratio()

    def _update_hit_ratio(self) -> None:
        hits = self._metrics.get("cache.hits")
        misses = self._metrics.get("cache.misses")
        total = (hits.value if hits else 0.0) + (misses.value if misses else 0.0)
        if total:
            self.gauge("cache.hit_ratio").set(
                (hits.value if hits else 0.0) / total
            )

    # -- export -------------------------------------------------------

    def snapshot_metrics(self) -> list[Counter | Gauge | Histogram]:
        """A point-in-time list of the registered metric objects.

        Exporters (:meth:`as_dict`,
        :func:`repro.obs.promtext.render_prometheus`) iterate this
        instead of reaching into the registry's private dict.
        """
        with self._lock:
            return list(self._metrics.values())

    def as_dict(self) -> dict:
        """The summary dict (validates against the checked-in schema)."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, float]] = {}
        for metric in self.snapshot_metrics():
            if isinstance(metric, Counter):
                counters[metric.name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[metric.name] = metric.value
            else:
                histograms[metric.name] = metric.snapshot()
        return {
            "version": SUMMARY_VERSION,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


class _NullMetric:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = "<noop>"
    value = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class NullMetricsRegistry:
    """The ambient default: records nothing, costs ~nothing."""

    is_noop = True

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def record_completion(
        self, stats: "TraversalStats", cached: bool | None = None
    ) -> None:
        pass

    def record_compile(self, seconds: float) -> None:
        pass

    def record_cache(self, hit: bool) -> None:
        pass

    def snapshot_metrics(self) -> list:
        return []

    def as_dict(self) -> dict:
        return {
            "version": SUMMARY_VERSION,
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


_NULL_METRICS = NullMetricsRegistry()

_ACTIVE: ContextVar[MetricsRegistry | NullMetricsRegistry] = ContextVar(
    "repro_metrics", default=_NULL_METRICS
)


def get_metrics() -> MetricsRegistry | NullMetricsRegistry:
    """The registry instrumented code should record into."""
    return _ACTIVE.get()


@contextmanager
def use_metrics(registry: MetricsRegistry | NullMetricsRegistry):
    """Install ``registry`` as the ambient registry for the with-block."""
    token = _ACTIVE.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE.reset(token)
