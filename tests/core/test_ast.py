"""Tests for the path-expression AST and concrete paths."""

import pytest

from repro.algebra.connectors import Connector
from repro.core.ast import ConcretePath, PathExpression, Step
from repro.errors import PathExpressionError
from repro.model.graph import SchemaGraph


def _edge(graph, source, name):
    return next(e for e in graph.edges_from(source) if e.name == name)


class TestStep:
    def test_tilde_step(self):
        step = Step.tilde("name")
        assert step.is_tilde
        assert step.symbol == "~"
        assert str(step) == "~name"

    def test_primary_step(self):
        step = Step(Connector.ISA, "person")
        assert not step.is_tilde
        assert str(step) == "@>person"

    def test_secondary_connectors_rejected(self):
        with pytest.raises(PathExpressionError):
            Step(Connector.INDIRECT_ASSOC, "x")

    def test_empty_name_rejected(self):
        with pytest.raises(PathExpressionError):
            Step(Connector.ASSOC, "")


class TestPathExpression:
    def test_label_of_complete_expression(self):
        expression = PathExpression(
            "ta",
            (
                Step(Connector.ISA, "grad"),
                Step(Connector.ISA, "student"),
                Step(Connector.ISA, "person"),
                Step(Connector.ASSOC, "name"),
            ),
        )
        label = expression.label()
        assert label.connector is Connector.ASSOC
        assert label.semantic_length == 1

    def test_incomplete_expression_has_no_connectors(self):
        expression = PathExpression("ta", (Step.tilde("name"),))
        with pytest.raises(PathExpressionError):
            expression.connectors()

    def test_empty_root_rejected(self):
        with pytest.raises(PathExpressionError):
            PathExpression("", ())

    def test_last_name_of_empty_expression(self):
        with pytest.raises(PathExpressionError):
            PathExpression("ta", ()).last_name


class TestConcretePath:
    def test_start_and_extend(self, university_graph):
        path = ConcretePath.start("ta")
        assert path.target_class == "ta"
        assert path.length == 0
        path = path.extend(_edge(university_graph, "ta", "grad"))
        assert path.target_class == "grad"
        assert path.length == 1

    def test_extend_checks_anchoring(self, university_graph):
        path = ConcretePath.start("ta")
        with pytest.raises(PathExpressionError):
            path.extend(_edge(university_graph, "student", "take"))

    def test_classes_and_acyclicity(self, university_graph):
        path = ConcretePath.start("ta")
        path = path.extend(_edge(university_graph, "ta", "grad"))
        path = path.extend(_edge(university_graph, "grad", "student"))
        assert path.classes() == ["ta", "grad", "student"]
        assert path.is_acyclic

    def test_cyclic_path_detected(self, university_graph):
        path = ConcretePath.start("student")
        path = path.extend(_edge(university_graph, "student", "take"))
        path = path.extend(_edge(university_graph, "course", "student"))
        assert not path.is_acyclic

    def test_to_expression_round_trip(self, university_graph):
        path = ConcretePath.start("ta")
        path = path.extend(_edge(university_graph, "ta", "grad"))
        path = path.extend(_edge(university_graph, "grad", "student"))
        expression = path.to_expression()
        assert str(expression) == "ta@>grad@>student"
        assert expression.is_complete

    def test_label_and_semantic_length(self, university_graph):
        path = ConcretePath.start("ta")
        for source, name in (
            ("ta", "grad"),
            ("grad", "student"),
            ("student", "person"),
            ("person", "name"),
        ):
            path = path.extend(_edge(university_graph, source, name))
        assert str(path.label()) == "[.,1]"
        assert path.semantic_length == 1
        assert path.length == 4

    def test_startswith(self, university_graph):
        path = ConcretePath.start("ta")
        step1 = path.extend(_edge(university_graph, "ta", "grad"))
        step2 = step1.extend(_edge(university_graph, "grad", "student"))
        assert step2.startswith(step1)
        assert step2.startswith(path)
        assert not step1.startswith(step2)
