"""Tests for the ablation studies (on fast settings)."""

import pytest

from repro.experiments.ablation import (
    candidate_orders,
    run_caution_ablation,
    run_exhaustive_comparison,
    run_order_ablation,
)
from repro.experiments.oracle import DesignerOracle, WorkloadQuery


@pytest.fixture()
def mini_oracle():
    return DesignerOracle(
        [
            WorkloadQuery(
                query_id="u1",
                text="ta ~ name",
                intended=(
                    "ta@>grad@>student@>person.name",
                    "ta@>instructor@>teacher@>employee@>person.name",
                ),
            ),
            WorkloadQuery(
                query_id="u2",
                text="ta ~ teach",
                intended=("ta@>instructor@>teacher.teach",),
            ),
        ]
    )


class TestOrderAblation:
    def test_five_candidate_orders(self):
        names = [order.name for order in candidate_orders()]
        assert names == ["default", "rank", "rank-strict", "flat", "total"]

    def test_default_order_wins_on_the_mini_workload(
        self, university, mini_oracle
    ):
        rows = run_order_ablation(university, mini_oracle, e=1)
        by_name = {row.order_name: row for row in rows}
        default = by_name["default"]
        assert default.average_recall == 1.0
        assert default.average_precision == 1.0
        # the flat (shortest-only) order must not beat the default
        assert by_name["flat"].average_precision <= default.average_precision
        assert by_name["flat"].average_recall <= default.average_recall

    def test_total_order_cannot_return_both_isa_chains(
        self, university, mini_oracle
    ):
        """Forcing totality breaks the multiple-completion behaviour the
        paper's Section 4.3 requires for multiple inheritance...
        unless the tie is between equal keys.  At minimum it must not
        beat the default."""
        rows = run_order_ablation(university, mini_oracle, e=1)
        by_name = {row.order_name: row for row in rows}
        assert (
            by_name["total"].average_recall
            <= by_name["default"].average_recall
        )


class TestCautionAblation:
    def test_disabling_caution_never_adds_paths(self, university, mini_oracle):
        rows = run_caution_ablation(university, mini_oracle, e=1)
        for row in rows:
            assert row.paths_without_caution <= row.paths_with_caution
            assert len(row.lost_paths) == (
                row.paths_with_caution - row.paths_without_caution
            )


class TestExhaustiveComparison:
    def test_algorithm_agrees_with_ground_truth(
        self, university, mini_oracle
    ):
        rows = run_exhaustive_comparison(university, mini_oracle, e=1)
        for row in rows:
            assert row.agrees
            assert row.algorithm_calls < row.enumerated_paths * 100

    def test_enumeration_larger_than_answer(self, university, mini_oracle):
        rows = run_exhaustive_comparison(university, mini_oracle, e=1)
        for row in rows:
            assert row.enumerated_paths >= row.algorithm_paths
