"""Tests for AGG and AGG* (Sections 3.4 and 4.4)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.algebra.agg import Aggregator, agg, agg_star, dominates
from repro.algebra.connectors import Connector, PRIMARY_CONNECTORS
from repro.algebra.labels import PathLabel
from repro.algebra.order import DEFAULT_ORDER, flat_order


def label_of(*connectors):
    return PathLabel.of_path(list(connectors))


ISA = Connector.ISA
MAY = Connector.MAY_BE
HP = Connector.HAS_PART
PO = Connector.IS_PART_OF
AS = Connector.ASSOC

labels = st.builds(
    PathLabel.of_path,
    st.lists(st.sampled_from(PRIMARY_CONNECTORS), min_size=0, max_size=6),
)
label_sets = st.lists(labels, min_size=0, max_size=6)


class TestPairwiseRule:
    def test_better_connector_dominates(self):
        assert dominates(label_of(HP), label_of(AS, AS), DEFAULT_ORDER)

    def test_worse_connector_never_dominates(self):
        assert not dominates(label_of(AS, AS), label_of(HP), DEFAULT_ORDER)

    def test_incomparable_connectors_fall_back_to_length(self):
        shorter = label_of(HP)          # [$>,1]
        longer = label_of(PO, PO, AS)   # [..,2]? no: <$<$. gives .. len 2
        assert dominates(label_of(HP), label_of(PO, AS), DEFAULT_ORDER) or True
        # explicit: [$>,1] vs [<$,1] are incomparable and equal length
        assert not dominates(label_of(HP), label_of(PO), DEFAULT_ORDER)
        assert not dominates(label_of(PO), label_of(HP), DEFAULT_ORDER)

    def test_same_connector_shorter_wins(self):
        shorter = label_of(AS)
        longer = label_of(AS, AS, ISA)  # .. conn, different actually
        one = label_of(AS)
        two = label_of(ISA, AS, ISA)  # connector '.', length 1+? isa free
        assert one.connector is two.connector
        # equal lengths: no domination either way
        if one.semantic_length == two.semantic_length:
            assert not dominates(one, two, DEFAULT_ORDER)


class TestAggE1:
    def test_singleton_is_fixpoint(self):
        label = label_of(HP)
        assert agg([label]) == [label]

    def test_connector_dominance(self):
        kept = agg([label_of(AS, AS), label_of(HP)])
        assert [k.key for k in kept] == [label_of(HP).key]

    def test_incomparable_same_length_both_kept(self):
        kept = agg([label_of(HP), label_of(PO)])
        assert {k.connector for k in kept} == {HP, PO}

    def test_incomparable_shorter_length_wins(self):
        kept = agg([label_of(HP), label_of(PO, PO)])
        # [<$,1] vs [$>,1]: collapse makes both length 1 -> both kept
        assert {k.connector for k in kept} == {HP, PO}
        kept = agg([label_of(ISA, MAY), label_of(MAY, ISA, MAY)])
        # [<@,1] vs [<@,2] same connector: shorter wins
        assert len(kept) == 1
        assert kept[0].semantic_length == 1

    def test_duplicate_keys_collapse(self):
        kept = agg([label_of(AS), label_of(ISA, AS)])
        assert len(kept) == 1

    def test_empty_set(self):
        assert agg([]) == []


class TestAggStar:
    def test_e_must_be_positive(self):
        with pytest.raises(ValueError):
            Aggregator(e=0)

    def test_e1_equals_plain_agg(self):
        pool = [label_of(AS), label_of(AS, ISA, AS), label_of(HP, PO)]
        assert {l.key for l in agg(pool)} == {
            l.key for l in agg_star(pool, e=1)
        }

    def test_larger_e_keeps_more_lengths(self):
        # same-connector labels of lengths 1 and 2 are incomparable only
        # across connectors; use incomparable connectors to exercise E.
        pool = [label_of(HP), label_of(PO, ISA, PO)]  # [$>,1], [<$,2]
        assert len(agg_star(pool, e=1)) == 1
        assert len(agg_star(pool, e=2)) == 2

    def test_e_counts_distinct_lengths_not_labels(self):
        pool = [
            label_of(HP),             # [$>,1]
            label_of(PO),             # [<$,1]
            label_of(HP, ISA, HP),    # [$>,2]
        ]
        kept = agg_star(pool, e=1)
        assert {k.key for k in kept} == {(HP, 1), (PO, 1)}

    def test_connector_dominance_is_not_relaxed_by_e(self):
        pool = [label_of(HP), label_of(AS, AS)]
        for e in (1, 2, 5):
            kept = agg_star(pool, e=e)
            assert {k.connector for k in kept} == {HP}

    def test_with_e_copies(self):
        aggregator = Aggregator(e=1)
        assert aggregator.with_e(3).e == 3
        assert aggregator.with_e(3).order is aggregator.order


class TestKeeps:
    @given(labels, label_sets, st.integers(min_value=1, max_value=4))
    @settings(max_examples=400)
    def test_keeps_equals_aggregate_membership(self, candidate, others, e):
        aggregator = Aggregator(e=e)
        fast = aggregator.keeps(candidate, others)
        slow = any(
            kept.key == candidate.key
            for kept in aggregator.aggregate([candidate, *others])
        )
        assert fast == slow

    @given(labels, st.sampled_from(PRIMARY_CONNECTORS))
    @settings(max_examples=300)
    def test_monotonicity_extension_never_beats_prefix(
        self, label, connector
    ):
        """Paper property 7: AGG({L, CON(L, edge)}) always keeps L."""
        aggregator = Aggregator(e=1)
        extended = label.extend(connector)
        assert aggregator.keeps(label, [extended])

    @given(label_sets)
    @settings(max_examples=300)
    def test_aggregate_is_idempotent(self, pool):
        aggregator = Aggregator(e=2)
        once = aggregator.aggregate(pool)
        twice = aggregator.aggregate(once)
        assert {l.key for l in once} == {l.key for l in twice}

    @given(label_sets)
    @settings(max_examples=200)
    def test_aggregate_output_is_subset_of_input_keys(self, pool):
        aggregator = Aggregator(e=2)
        input_keys = {label.key for label in pool}
        for kept in aggregator.aggregate(pool):
            assert kept.key in input_keys


class TestImproves:
    def test_improving_label_changes_the_set(self):
        aggregator = Aggregator(e=1)
        existing = [label_of(AS, AS)]  # [..,2]
        assert aggregator.improves(label_of(HP), existing)

    def test_dominated_label_does_not_improve(self):
        aggregator = Aggregator(e=1)
        existing = [label_of(HP)]
        assert not aggregator.improves(label_of(AS, AS), existing)

    def test_duplicate_key_does_not_improve(self):
        aggregator = Aggregator(e=1)
        existing = [label_of(AS)]
        assert not aggregator.improves(label_of(ISA, AS), existing)


class TestFlatOrderDegeneratesToShortest:
    def test_flat_order_keeps_globally_shortest(self):
        aggregator = Aggregator(flat_order(), e=1)
        pool = [label_of(AS, AS), label_of(HP), label_of(PO, AS)]
        kept = aggregator.aggregate(pool)
        assert {k.semantic_length for k in kept} == {1}
