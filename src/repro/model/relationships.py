"""Relationship declarations of the data model (paper Section 2.1).

A relationship is a directed, named edge between two classes, of one of
the five kinds in :mod:`repro.model.kinds`.  Per the paper:

* a relationship's name defaults to the name of its *target* class;
* for every relationship, its inverse is assumed present in the schema as
  well — :func:`Relationship.make_inverse` constructs it;
* the pair ``(source class, name)`` identifies a relationship uniquely,
  which is what lets path expressions name steps unambiguously.
"""

from __future__ import annotations

import dataclasses

from repro.errors import InvalidRelationshipError
from repro.model.classes import is_valid_class_name
from repro.model.kinds import RelationshipKind

__all__ = ["Relationship", "default_inverse_name"]


def default_inverse_name(source: str) -> str:
    """Default name of the inverse of a relationship out of ``source``.

    The paper's convention names a relationship after its target class; the
    inverse therefore defaults to the name of the original source class.
    """
    return source


@dataclasses.dataclass(frozen=True)
class Relationship:
    """A directed, named, kinded edge of the schema graph.

    Parameters
    ----------
    source:
        Name of the source class.
    target:
        Name of the target class.
    kind:
        One of the five :class:`~repro.model.kinds.RelationshipKind` values.
    name:
        Relationship name; defaults to the target class name when empty
        (the paper's convention).
    doc:
        Optional human-readable description.
    """

    source: str
    target: str
    kind: RelationshipKind
    name: str = ""
    doc: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(self, "name", self.target)
        if not is_valid_class_name(self.name):
            raise InvalidRelationshipError(
                f"invalid relationship name {self.name!r}"
            )
        if self.kind.is_taxonomic and self.source == self.target:
            raise InvalidRelationshipError(
                f"class {self.source!r} cannot be Isa/May-Be related to itself"
            )

    @classmethod
    def isa(cls, subclass: str, superclass: str) -> "Relationship":
        """The default-named Isa edge ``subclass @> superclass``.

        This is the canonical form of an inheritance edge — the one the
        delta layer's Add/RemoveInheritanceEdge commands materialize.
        """
        return cls(subclass, superclass, RelationshipKind.ISA)

    @property
    def key(self) -> tuple[str, str]:
        """The identifying ``(source, name)`` pair."""
        return (self.source, self.name)

    @property
    def has_default_name(self) -> bool:
        """True when the relationship is named after its target class."""
        return self.name == self.target

    def make_inverse(self, name: str = "") -> "Relationship":
        """Construct the inverse relationship (paper Section 2.1).

        The inverse runs target-to-source with the inverse kind.  Its name
        defaults to the original source class name.
        """
        return Relationship(
            source=self.target,
            target=self.source,
            kind=self.kind.inverse,
            name=name or default_inverse_name(self.source),
            doc=f"inverse of {self.source}.{self.name}" if not self.doc else self.doc,
        )

    def is_inverse_of(self, other: "Relationship") -> bool:
        """True if ``other`` connects the same classes in reverse with the
        inverse kind (names are not required to correspond)."""
        return (
            self.source == other.target
            and self.target == other.source
            and self.kind == other.kind.inverse
        )

    def __str__(self) -> str:
        return f"{self.source} {self.kind.symbol}{self.name} -> {self.target}"
