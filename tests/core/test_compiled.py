"""Tests for the compile-once / query-many layer
(:mod:`repro.core.compiled`)."""

import pytest

from repro.algebra.caution import CautionSets
from repro.algebra.order import default_order, flat_order, rank_order
from repro.core.compiled import (
    CompiledSchema,
    CompletionCache,
    compile_schema,
    domain_knowledge_key,
    invalidate,
    registry_size,
)
from repro.core.domain import DomainKnowledge
from repro.core.engine import Disambiguator
from repro.errors import EvaluationError
from repro.model.kinds import RelationshipKind
from repro.model.schema import Schema
from repro.schemas.cupid import build_cupid_schema
from repro.schemas.university import build_university_schema


@pytest.fixture(autouse=True)
def clean_registry():
    """Isolate each test from artifacts other tests registered."""
    invalidate()
    yield
    invalidate()


class TestFingerprint:
    def test_equal_content_equal_fingerprint(self):
        assert (
            build_university_schema().fingerprint()
            == build_university_schema().fingerprint()
        )

    def test_adding_a_class_changes_the_fingerprint(self):
        schema = build_university_schema()
        before = schema.fingerprint()
        schema.add_class("observatory")
        assert schema.fingerprint() != before

    def test_adding_a_relationship_changes_the_fingerprint(self):
        schema = build_university_schema()
        before = schema.fingerprint()
        schema.add_attribute("ta", "badge")
        assert schema.fingerprint() != before

    def test_docs_and_display_name_do_not_affect_it(self):
        plain = Schema("one")
        plain.add_class("person")
        documented = Schema("two")
        documented.add_class("person", doc="a human being")
        assert plain.fingerprint() == documented.fingerprint()

    def test_declaration_order_does_not_affect_it(self):
        forward = Schema()
        forward.add_classes(["a", "b"])
        forward.add_attribute("a", "x")
        forward.add_attribute("b", "y")
        backward = Schema()
        backward.add_classes(["b", "a"])
        backward.add_attribute("b", "y")
        backward.add_attribute("a", "x")
        assert forward.fingerprint() == backward.fingerprint()

    def test_graph_fingerprint_reflects_exclusions(self):
        from repro.model.graph import SchemaGraph

        schema = build_university_schema()
        plain = SchemaGraph(schema)
        restricted = plain.restricted(exclude_classes={"grad"})
        assert plain.fingerprint() != restricted.fingerprint()

    def test_serialized_documents_carry_the_fingerprint(self):
        from repro.model.serialization import schema_to_dict

        schema = build_university_schema()
        assert schema_to_dict(schema)["fingerprint"] == schema.fingerprint()


class TestOrderContentKey:
    def test_equal_orders_share_a_key(self):
        assert default_order().content_key() == default_order().content_key()

    def test_different_orders_differ(self):
        from repro.algebra.order import total_order

        keys = {
            default_order().content_key(),
            flat_order().content_key(),
            total_order().content_key(),
        }
        assert len(keys) == 3

    def test_content_equal_variant_orders_share_a_key(self):
        """`rank_order()` happens to induce the same better-pairs as the
        default reconstruction — content keying deliberately unifies
        them so they share caution sets and compilation artifacts."""
        if rank_order().pairs() == default_order().pairs():
            assert rank_order().content_key() == default_order().content_key()
        else:  # pragma: no cover - depends on the reconstruction
            assert rank_order().content_key() != default_order().content_key()

    def test_caution_sets_are_shared_by_content_not_identity(self):
        """The old id(order)-keyed cache could hand one order's caution
        sets to a different order after garbage collection reused the
        id; content keys make the identity of the object irrelevant."""
        first = CautionSets(default_order())
        second = CautionSets(default_order())  # distinct order object
        assert first._sets is second._sets
        assert default_order().content_key() in CautionSets._cache

    def test_distinct_orders_do_not_collide(self):
        assert CautionSets(default_order())._sets is not CautionSets(
            flat_order()
        )._sets


class TestRegistry:
    def test_equal_schemas_share_one_artifact(self):
        first = compile_schema(build_university_schema())
        second = compile_schema(build_university_schema())
        assert first is second
        assert registry_size() == 1

    def test_same_fingerprint_means_cache_hit_across_engines(self):
        one = Disambiguator(build_university_schema())
        two = Disambiguator(build_university_schema())
        assert one.compiled is two.compiled
        hits_before = one.compiled.cache.hits
        cold = one.complete("ta ~ name")
        warm = two.complete("ta ~ name")
        assert warm is cold  # the very object, hence byte-identical
        assert one.compiled.cache.hits == hits_before + 1

    def test_normalized_text_unifies_spellings(self):
        engine = Disambiguator(build_university_schema())
        assert engine.complete("ta ~ name") is engine.complete("ta~name")

    def test_order_and_knowledge_partition_the_registry(self):
        schema = build_university_schema()
        base = compile_schema(schema)
        flat = compile_schema(schema, order=flat_order())
        knowing = compile_schema(
            schema, domain_knowledge=DomainKnowledge.excluding("grad")
        )
        assert base is not flat and base is not knowing
        assert registry_size() == 3

    def test_invalidate_clears(self):
        schema = build_university_schema()
        compile_schema(schema)
        assert registry_size() == 1
        assert invalidate() == 1
        assert registry_size() == 0

    def test_invalidate_by_schema_is_selective(self):
        university = build_university_schema()
        compile_schema(university)
        compile_schema(build_cupid_schema())
        assert invalidate(university) == 1
        assert registry_size() == 1

    def test_bad_domain_knowledge_still_raises(self):
        with pytest.raises(EvaluationError):
            Disambiguator(
                build_university_schema(),
                domain_knowledge=DomainKnowledge.excluding("no_such_class"),
            )

    def test_knowledge_key_covers_every_field(self):
        keys = {
            domain_knowledge_key(DomainKnowledge.none()),
            domain_knowledge_key(DomainKnowledge.excluding("a")),
            domain_knowledge_key(
                DomainKnowledge(excluded_relationships=frozenset({("a", "b")}))
            ),
            domain_knowledge_key(
                DomainKnowledge(class_penalties=(("a", 2),))
            ),
        }
        assert len(keys) == 4


class TestMutationInvalidation:
    def test_mutation_changes_fingerprint_and_results(self):
        schema = build_university_schema()
        stale_engine = Disambiguator(schema)
        before = stale_engine.complete("ta ~ name")
        assert len(before.paths) == 2

        schema.add_attribute("ta", "name")
        fresh_engine = Disambiguator(schema)
        assert fresh_engine.compiled is not stale_engine.compiled
        assert fresh_engine.compiled.fingerprint != stale_engine.compiled.fingerprint
        after = fresh_engine.complete("ta ~ name")
        assert "ta.name" in after.expressions
        assert stale_engine.compiled.is_stale()

    def test_stale_registry_entries_are_recompiled(self):
        schema = build_university_schema()
        compiled = compile_schema(schema)
        fingerprint = compiled.fingerprint
        schema.add_class("observatory")
        # A content-equal *other* schema must not be handed the stale
        # artifact (whose .schema now has different content).
        twin = build_university_schema()
        assert twin.fingerprint() == fingerprint
        recompiled = compile_schema(twin)
        assert recompiled is not compiled
        assert not recompiled.is_stale()


class TestCacheCorrectness:
    @pytest.mark.parametrize(
        "build, expression",
        [
            (build_university_schema, "ta ~ name"),
            (build_university_schema, "department ~ ssn"),
            (build_cupid_schema, "experiment ~ conductance"),
            (build_cupid_schema, "simulation ~ value"),
        ],
    )
    def test_cached_equals_uncached_path_for_path(self, build, expression):
        cold = Disambiguator(CompiledSchema(build()))
        warm_engine = Disambiguator(CompiledSchema(build()))
        warm_engine.complete(expression)  # populate
        warm = warm_engine.complete(expression)  # served from cache
        assert warm.expressions == cold.complete(expression).expressions
        assert [str(l) for l in warm.labels] == [
            str(l) for l in cold.complete(expression).labels
        ]

    def test_general_expressions_are_cached_too(self):
        engine = Disambiguator(CompiledSchema(build_university_schema()))
        cold = engine.complete("department ~ student . take ~ name")
        assert engine.complete("department ~ student . take ~ name") is cold

    def test_tilde_segments_share_the_cache_across_queries(self):
        compiled = CompiledSchema(build_university_schema())
        engine = Disambiguator(compiled)
        engine.complete("ta ~ name")
        hits_before = compiled.cache.hits
        # The trailing "~ name" segment anchored at ta was already
        # traversed by the simple query above.
        engine.complete("student ~ ta ~ name")
        assert compiled.cache.hits > hits_before

    def test_e_and_ablation_flags_partition_the_cache(self):
        compiled = CompiledSchema(build_university_schema())
        narrow = Disambiguator(compiled, e=1)
        wide = Disambiguator(compiled, e=3)
        bare = Disambiguator(compiled, use_caution_sets=False)
        results = {
            id(narrow.complete("department ~ ssn")),
            id(wide.complete("department ~ ssn")),
            id(bare.complete("department ~ ssn")),
        }
        assert len(results) == 3  # three entries, no cross-talk
        assert len(wide.complete("department ~ ssn").paths) >= len(
            narrow.complete("department ~ ssn").paths
        )

    def test_failures_are_not_cached(self):
        from repro.errors import NoCompletionError

        engine = Disambiguator(CompiledSchema(build_university_schema()))
        with pytest.raises(NoCompletionError):
            engine.complete("ta.no_such_relationship")
        with pytest.raises(NoCompletionError):
            engine.complete("ta.no_such_relationship")
        assert len(engine.compiled.cache) == 0

    def test_empty_results_are_cached(self):
        """An empty completion set is a valid, deterministic answer."""
        engine = Disambiguator(CompiledSchema(build_university_schema()))
        first = engine.complete("ta ~ no_such_relationship")
        assert first.is_empty
        assert engine.complete("ta ~ no_such_relationship") is first

    def test_complete_between_is_cached_separately(self):
        engine = Disambiguator(CompiledSchema(build_university_schema()))
        first = engine.complete_between("ta", "person")
        assert engine.complete_between("ta", "person") is first


class TestLRUBound:
    def test_eviction_respects_the_bound(self):
        compiled = CompiledSchema(build_university_schema(), cache_size=2)
        engine = Disambiguator(compiled)
        for expression in ("ta ~ name", "department ~ ssn", "student ~ gpa"):
            engine.complete(expression)
        assert len(compiled.cache) <= 2

    def test_least_recently_used_entry_is_the_one_evicted(self):
        cache = CompletionCache(maxsize=2)
        cache.put(("a",), "A")
        cache.put(("b",), "B")
        assert cache.get(("a",)) == "A"  # refresh a
        cache.put(("c",), "C")  # evicts b
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == "A"
        assert cache.get(("c",)) == "C"

    def test_rejects_nonpositive_bounds(self):
        with pytest.raises(ValueError):
            CompletionCache(maxsize=0)


class TestBatchAndStats:
    def test_complete_batch_reports_hits_and_misses(self):
        engine = Disambiguator(CompiledSchema(build_university_schema()))
        workload = ["ta ~ name", "department ~ ssn", "ta ~ name"]
        cold = engine.complete_batch(workload)
        assert len(cold) == 3
        assert cold.stats.cache_misses == 2
        assert cold.stats.cache_hits == 1
        warm = engine.complete_batch(workload)
        assert warm.stats.cache_hits == 3
        assert warm.stats.cache_misses == 0
        assert warm.expressions == cold.expressions
        assert warm.stats.compile_seconds == engine.compiled.compile_seconds

    def test_cache_info_round_trip(self):
        engine = Disambiguator(CompiledSchema(build_university_schema()))
        engine.complete("ta ~ name")
        engine.complete("ta ~ name")
        info = engine.cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 1
        assert info["size"] == 1
        assert info["compile_seconds"] >= 0

    def test_with_e_shares_the_artifact(self):
        engine = Disambiguator(build_university_schema())
        assert engine.with_e(3).compiled is engine.compiled


class TestCompiledSchemaGuards:
    def test_order_cannot_be_overridden_on_a_compiled_artifact(self):
        compiled = CompiledSchema(build_university_schema())
        with pytest.raises(ValueError):
            Disambiguator(compiled, order=flat_order())

    def test_knowledge_cannot_be_overridden_on_a_compiled_artifact(self):
        compiled = CompiledSchema(build_university_schema())
        with pytest.raises(ValueError):
            Disambiguator(
                compiled, domain_knowledge=DomainKnowledge.excluding("grad")
            )

    def test_compile_schema_passes_artifacts_through(self):
        compiled = CompiledSchema(build_university_schema())
        assert compile_schema(compiled) is compiled
