"""The ``AGG`` and ``AGG*`` aggregation functions (paper Sections 3.4, 4.4).

Given a set of path labels, AGG keeps the optimal ones:

* primarily by the better-than partial order on connectors
  (Section 3.4.1): a label whose connector is beaten by another label's
  connector is dropped;
* secondarily by semantic length (Section 3.4.2): among labels whose
  connectors are incomparable, shorter semantic length wins.

``AGG*`` (Section 4.4) relaxes the secondary criterion: it keeps every
label whose semantic length is among the ``E`` lowest *distinct* lengths
surviving the connector filter (``E >= 1``; ``E = 1`` recovers AGG).

Labels are compared on their ``(connector, semantic length)`` pairs;
duplicates under that key collapse to one representative, matching the
paper's treatment of AGG as a function on label *sets*.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.algebra.labels import PathLabel
from repro.algebra.order import DEFAULT_ORDER, PartialOrder

__all__ = ["Aggregator", "agg", "agg_star", "dominates"]


def _label_sort_key(label: PathLabel) -> tuple[int, int]:
    return (label.semantic_length, label.connector.sort_rank)


def dominates(
    winner: PathLabel, loser: PathLabel, order: PartialOrder
) -> bool:
    """The pairwise AGG rule: does ``winner`` knock out ``loser``?

    True when winner's connector is strictly better, or the connectors
    are incomparable and winner is strictly semantically shorter.
    """
    if order.better(winner.connector, loser.connector):
        return True
    if order.better(loser.connector, winner.connector):
        return False
    return winner.semantic_length < loser.semantic_length


class Aggregator:
    """AGG/AGG* bound to a partial order and a relaxation parameter E.

    The completion algorithm holds one :class:`Aggregator` and calls it
    everywhere AGG* appears in the paper's Algorithm 2.

    Parameters
    ----------
    order:
        The better-than partial order on connectors.
    e:
        The AGG* relaxation parameter (number of lowest distinct
        semantic lengths retained); must be at least 1.
    """

    def __init__(
        self, order: PartialOrder | None = None, e: int = 1
    ) -> None:
        if e < 1:
            raise ValueError(f"E must be >= 1, got {e}")
        self.order = order if order is not None else DEFAULT_ORDER
        self.e = e
        # map[c] = connectors strictly beaten by c; hot-loop view.
        self._beats = self.order.beats_map()
        # Bitmask twin: _beaten_by[i] has bit j set when connector j
        # strictly beats connector i.  Lets the inner loop test "is this
        # connector beaten by anything present" with one AND.
        self._beaten_by = [0] * len(self._beats)
        for winner, losers in self._beats.items():
            for loser in losers:
                self._beaten_by[loser.index] |= 1 << winner.index

    @property
    def beaten_by(self) -> list[int]:
        """Per-connector defeat bitmasks: ``beaten_by[i]`` has bit ``j``
        set when connector ``j`` strictly beats connector ``i``.  Shared
        with the closure bound cut, which uses it as a one-AND prefilter
        before the full :meth:`keeps` test."""
        return self._beaten_by

    # ------------------------------------------------------------------
    # Core aggregation
    # ------------------------------------------------------------------

    def aggregate(self, labels: Iterable[PathLabel]) -> list[PathLabel]:
        """AGG* over a label set; deterministic order, deduplicated.

        Theta (``[@>, 0]``) needs no special casing to act as the
        annihilator the paper's property 5 requires: in a schema with
        acyclic Isa, every nonempty cyclic path's label either has a
        connector Theta beats outright or is a taxonomic label with
        semantic length >= 1, so ordinary dominance filtering removes it
        (property-tested in ``tests/algebra/test_properties.py``).
        """
        unique = self._deduplicate(labels)
        if not unique:
            return []
        survivors = self._connector_filter(unique)
        return self._length_filter(survivors)

    def keeps(self, candidate: PathLabel, against: Iterable[PathLabel]) -> bool:
        """True if ``candidate`` survives AGG* over ``{candidate} ∪ against``.

        This is the membership test Algorithm 2 uses in its pruning
        conditions (lines 9-10): ``l_u ∈ AGG*({l_u} ∪ best[...])``.
        Implemented directly (no intermediate aggregate) because it runs
        once or twice per edge on the traversal's innermost loop; the
        semantics are identical to membership of ``candidate.key`` in
        :meth:`aggregate` of the merged set (property-tested).
        """
        beaten_by = self._beaten_by
        merged = [candidate]
        merged.extend(against)
        present = 0
        for label in merged:
            present |= 1 << label.connector.index
        if present & beaten_by[candidate.connector.index]:
            return False
        # Lengths of the connector-filter survivors.
        lengths: set[int] = set()
        for label in merged:
            if not (present & beaten_by[label.connector.index]):
                lengths.add(label.semantic_length)
        if len(lengths) <= self.e:
            return True  # the candidate's own length is always present
        allowed = sorted(lengths)[: self.e]
        return candidate.semantic_length <= allowed[-1]

    def merge(
        self, candidate: PathLabel, existing: list[PathLabel]
    ) -> list[PathLabel]:
        """Exact fast path for ``aggregate([candidate, *existing])``
        when ``existing`` is itself an aggregate output (internally
        deduplicated) — the line-12 ``best[u]`` update of Algorithm 2,
        which runs once per surviving edge on the traversal's innermost
        loop.  Returns the same labels in the same order as
        :meth:`aggregate` (property-tested)."""
        if not existing:
            return [candidate]
        connector = candidate.connector
        length = candidate.semantic_length
        merged = [candidate]
        for label in existing:
            if label.connector is connector and label.semantic_length == length:
                continue  # duplicate key; candidate is the representative
            merged.append(label)
        beaten_by = self._beaten_by
        present = 0
        for label in merged:
            present |= 1 << label.connector.index
        survivors = [
            label
            for label in merged
            if not (present & beaten_by[label.connector.index])
        ]
        if len(survivors) > 1:
            lengths = sorted({label.semantic_length for label in survivors})
            if len(lengths) > self.e:
                allowed = set(lengths[: self.e])
                survivors = [
                    label
                    for label in survivors
                    if label.semantic_length in allowed
                ]
        survivors.sort(key=_label_sort_key)
        return survivors

    def improves(
        self, candidate: PathLabel, existing: Iterable[PathLabel]
    ) -> bool:
        """True if adding ``candidate`` changes AGG* of ``existing``."""
        existing = list(existing)
        before = {label.key for label in self.aggregate(existing)}
        after = {
            label.key for label in self.aggregate([candidate, *existing])
        }
        return before != after

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _deduplicate(labels: Iterable[PathLabel]) -> list[PathLabel]:
        seen: dict[tuple, PathLabel] = {}
        for label in labels:
            seen.setdefault(label.key, label)
        return list(seen.values())

    def _connector_filter(self, labels: list[PathLabel]) -> list[PathLabel]:
        """Drop labels whose connector is beaten by another label's."""
        beaten_by = self._beaten_by
        present = 0
        for label in labels:
            present |= 1 << label.connector.index
        return [
            label
            for label in labels
            if not (present & beaten_by[label.connector.index])
        ]

    def _length_filter(self, labels: list[PathLabel]) -> list[PathLabel]:
        """Keep labels with the E lowest distinct semantic lengths."""
        lengths = sorted({label.semantic_length for label in labels})
        cutoff = lengths[: self.e]
        allowed = set(cutoff)
        kept = [
            label for label in labels if label.semantic_length in allowed
        ]
        kept.sort(key=_label_sort_key)
        return kept

    def with_e(self, e: int) -> "Aggregator":
        """A copy of this aggregator with a different E."""
        return Aggregator(self.order, e=e)

    def __repr__(self) -> str:
        return f"Aggregator(order={self.order.name!r}, e={self.e})"


def agg(
    labels: Iterable[PathLabel], order: PartialOrder | None = None
) -> list[PathLabel]:
    """The paper's plain AGG (equals AGG* with ``E = 1``)."""
    return Aggregator(order, e=1).aggregate(labels)


def agg_star(
    labels: Iterable[PathLabel],
    e: int,
    order: PartialOrder | None = None,
) -> list[PathLabel]:
    """The paper's AGG* with relaxation parameter ``e``."""
    return Aggregator(order, e=e).aggregate(labels)
