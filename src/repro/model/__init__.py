"""The object-oriented data model substrate (paper Section 2).

Classes, the five relationship kinds, schemas-as-graphs, inheritance
semantics, a fluent builder, JSON and DSL (de)serialization, and an
in-memory object store for evaluating completed path expressions.
"""

from repro.model.analysis import (
    SchemaProfile,
    profile_schema,
    suggest_hub_exclusions,
)
from repro.model.builder import ClassBuilder, SchemaBuilder
from repro.model.classes import (
    BOOLEAN,
    ClassDef,
    INTEGER,
    PRIMITIVE_CLASS_NAMES,
    REAL,
    STRING,
    primitive_classes,
)
from repro.model.delta import (
    AddClass,
    AddInheritanceEdge,
    AddRelationship,
    DeltaCommand,
    RemoveClass,
    RemoveInheritanceEdge,
    RemoveRelationship,
    SchemaDelta,
    relationship_pair,
)
from repro.model.dsl import parse_schema_dsl, schema_to_dsl
from repro.model.graph import SchemaEdge, SchemaGraph
from repro.model.inheritance import (
    ancestors,
    descendants,
    effective_relationships,
    inheritance_depth,
    is_subclass_of,
    isa_edges,
    resolve_inherited,
)
from repro.model.instances import Database, DBObject
from repro.model.kinds import RelationshipKind
from repro.model.persistence import (
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)
from repro.model.relationships import Relationship
from repro.model.schema import Schema
from repro.model.serialization import (
    load_schema,
    save_schema,
    schema_from_dict,
    schema_to_dict,
)

__all__ = [
    "AddClass",
    "AddInheritanceEdge",
    "AddRelationship",
    "BOOLEAN",
    "ClassBuilder",
    "ClassDef",
    "Database",
    "DBObject",
    "DeltaCommand",
    "INTEGER",
    "PRIMITIVE_CLASS_NAMES",
    "REAL",
    "Relationship",
    "RelationshipKind",
    "RemoveClass",
    "RemoveInheritanceEdge",
    "RemoveRelationship",
    "STRING",
    "Schema",
    "SchemaBuilder",
    "SchemaDelta",
    "SchemaEdge",
    "SchemaGraph",
    "SchemaProfile",
    "ancestors",
    "relationship_pair",
    "database_from_dict",
    "database_to_dict",
    "descendants",
    "effective_relationships",
    "inheritance_depth",
    "is_subclass_of",
    "isa_edges",
    "load_database",
    "load_schema",
    "parse_schema_dsl",
    "primitive_classes",
    "profile_schema",
    "resolve_inherited",
    "save_database",
    "save_schema",
    "suggest_hub_exclusions",
    "schema_from_dict",
    "schema_to_dict",
    "schema_to_dsl",
]
