"""CLI budget flags: ``--deadline-ms`` / ``--max-nodes`` /
``--partial-ok`` on the completion-driving subcommands."""

import pytest

from repro.cli import build_parser, main


class TestParserWiring:
    @pytest.mark.parametrize(
        "argv",
        [
            ["complete", "--builtin", "cupid", "--deadline-ms", "50", "x ~ y"],
            ["query", "--db", "f", "--max-nodes", "10", "q"],
            ["fox", "--db", "f", "--partial-ok", "q"],
            [
                "experiments",
                "--quick",
                "--deadline-ms",
                "100",
                "--max-nodes",
                "5",
                "--partial-ok",
            ],
        ],
    )
    def test_budget_flags_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert hasattr(args, "deadline_ms")
        assert hasattr(args, "max_nodes")
        assert hasattr(args, "partial_ok")

    def test_flags_absent_on_unrelated_commands(self):
        args = build_parser().parse_args(
            ["profile", "--builtin", "university"]
        )
        assert not hasattr(args, "deadline_ms")


class TestCompleteUnderBudget:
    def test_trip_exits_3_with_best_so_far(self, capsys):
        code = main(
            [
                "complete",
                "--builtin",
                "cupid",
                "-e",
                "3",
                "--max-nodes",
                "30",
                "experiment ~ conductance",
            ]
        )
        captured = capsys.readouterr()
        assert code == 3
        assert "budget exceeded" in captured.err
        assert "best-so-far" in captured.err

    def test_partial_ok_exits_normally_with_notice(self, capsys):
        code = main(
            [
                "complete",
                "--builtin",
                "cupid",
                "-e",
                "3",
                "--max-nodes",
                "30",
                "--partial-ok",
                "experiment ~ conductance",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "truncated by budget" in captured.out

    def test_generous_budget_result_matches_ungoverned(self, capsys):
        argv_tail = [
            "--builtin",
            "university",
            "ta ~ name",
        ]
        assert main(["complete", *argv_tail]) == 0
        ungoverned = capsys.readouterr().out
        assert (
            main(
                [
                    "complete",
                    "--deadline-ms",
                    "60000",
                    "--partial-ok",
                    *argv_tail,
                ]
            )
            == 0
        )
        governed = capsys.readouterr().out

        def paths(report):
            return [
                line for line in report.splitlines() if line.startswith("  [")
            ]

        assert paths(governed) == paths(ungoverned)
