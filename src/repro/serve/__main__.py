"""``python -m repro.serve`` — boot the always-on serving tier.

Examples::

    # one builtin tenant, defaults everywhere
    python -m repro.serve --builtin university

    # several tenants, one with an instance database for /v1/query
    python -m repro.serve \
        --builtin university --builtin cupid \
        --tenant people=dept.json --db people=dept_data.json \
        --port 8080 --queue-limit 32 --workers 8 \
        --default-deadline-ms 500 --drain-deadline 10

The process serves until ``SIGTERM``/``SIGINT``, then drains
gracefully: new requests are refused with ``503`` while in-flight ones
finish (or degrade to ``206`` best-so-far at the drain deadline), and
the process exits ``0``.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path

from repro.model.dsl import parse_schema_dsl
from repro.model.persistence import load_database
from repro.model.schema import Schema
from repro.model.serialization import load_schema
from repro.schemas.cupid import build_cupid_schema
from repro.schemas.hospital import build_hospital_schema
from repro.schemas.parts import build_parts_schema
from repro.schemas.university import build_university_schema
from repro.serve.app import ServingTier
from repro.serve.config import ServeConfig
from repro.serve.tenants import TenantRegistry, prewarm_tenant

__all__ = ["add_arguments", "build_parser", "build_tier", "main", "serve"]

_BUILTINS = {
    "university": build_university_schema,
    "cupid": build_cupid_schema,
    "hospital": build_hospital_schema,
    "parts": build_parts_schema,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=__doc__.splitlines()[0],
    )
    add_arguments(parser)
    return parser


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the serving-tier options (shared with ``repro serve``)."""
    parser.add_argument(
        "--builtin",
        action="append",
        default=[],
        choices=sorted(_BUILTINS),
        help="serve a bundled example schema (repeatable)",
    )
    parser.add_argument(
        "--tenant",
        action="append",
        default=[],
        metavar="NAME=FILE",
        help="serve a schema file (.json or DSL text) as tenant NAME "
        "(repeatable)",
    )
    parser.add_argument(
        "--db",
        action="append",
        default=[],
        metavar="NAME=FILE",
        help="attach an instance database (JSON) to tenant NAME, "
        "enabling /v1/query (repeatable)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8080, help="0 picks an ephemeral port"
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="admitted-but-unanswered bound; the next request is shed "
        "with 429 (default 16)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="engine worker threads (default 4)",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="worker-pool backend for boot-time prewarm fan-out "
        "('process' shards cold prewarms across cores; the "
        "per-request pool is always threads — request budgets carry "
        "the drain clock and cancel signal)",
    )
    parser.add_argument(
        "--default-deadline-ms",
        type=float,
        default=1000.0,
        help="wall-clock budget for requests naming none (default 1000)",
    )
    parser.add_argument(
        "--max-deadline-ms",
        type=float,
        default=10_000.0,
        help="ceiling a request's X-Deadline-Ms is clamped to "
        "(default 10000)",
    )
    parser.add_argument(
        "--max-nodes",
        type=int,
        default=None,
        help="default node-expansion cap (default: none)",
    )
    parser.add_argument(
        "--drain-deadline",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="grace for in-flight requests after SIGTERM (default 5)",
    )
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=8 * 1024 * 1024,
        help="global completion-cache memory bound across tenants "
        "(default 8 MiB)",
    )
    parser.add_argument(
        "--slow-ms",
        type=float,
        default=0.0,
        help="slow-log retention threshold; 0 retains every request "
        "(default 0)",
    )
    parser.add_argument(
        "--prewarm",
        action="append",
        default=[],
        metavar="NAME=EXPRESSION",
        help="complete EXPRESSION for tenant NAME at boot, with retry "
        "on transient faults (repeatable)",
    )
    parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=0.0,
        metavar="RATE",
        help="probability a request gets a recording tracer; slow or "
        "failed requests are tail-promoted regardless (default 0)",
    )
    parser.add_argument(
        "--access-log",
        default=None,
        metavar="PATH",
        help="append every structured access record to PATH as JSONL "
        "(the in-memory ring is always kept unless --no-access-log)",
    )
    parser.add_argument(
        "--no-access-log",
        action="store_true",
        help="disable the structured access log entirely",
    )
    parser.add_argument(
        "--slo-latency-ms",
        type=float,
        default=250.0,
        help="latency-objective threshold for SLO burn-rate monitoring "
        "(default 250)",
    )


def _parse_pair(raw: str, option: str) -> tuple[str, str]:
    name, separator, value = raw.partition("=")
    if not separator or not name or not value:
        raise SystemExit(f"{option} expects NAME=VALUE, got {raw!r}")
    return name, value


def _load_schema_file(path_text: str) -> Schema:
    path = Path(path_text)
    if path.suffix == ".json":
        return load_schema(path)
    return parse_schema_dsl(path.read_text())


def build_tier(args: argparse.Namespace) -> ServingTier:
    """Assemble the tenant registry and tier from parsed arguments."""
    config = ServeConfig(
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        workers=args.workers,
        executor=args.executor,
        default_deadline_ms=args.default_deadline_ms,
        max_deadline_ms=args.max_deadline_ms,
        default_max_nodes=args.max_nodes,
        drain_deadline_s=args.drain_deadline,
        max_cache_bytes=args.cache_bytes,
        slow_ms=args.slow_ms,
        trace_sample_rate=args.trace_sample_rate,
        access_log=not args.no_access_log,
        access_log_path=args.access_log,
        slo_latency_ms=args.slo_latency_ms,
    )
    registry = TenantRegistry(max_cache_bytes=config.max_cache_bytes)

    schemas: dict[str, Schema] = {}
    for builtin in args.builtin:
        schemas[builtin] = _BUILTINS[builtin]()
    for raw in args.tenant:
        name, path_text = _parse_pair(raw, "--tenant")
        schemas[name] = _load_schema_file(path_text)
    if not schemas:
        raise SystemExit(
            "no tenants: pass at least one --builtin or --tenant NAME=FILE"
        )

    databases: dict[str, str] = dict(
        _parse_pair(raw, "--db") for raw in args.db
    )
    unknown = sorted(set(databases) - set(schemas))
    if unknown:
        raise SystemExit(f"--db names unknown tenant(s): {', '.join(unknown)}")

    for name, schema in sorted(schemas.items()):
        database = None
        if name in databases:
            database = load_database(databases[name], schema=schema)
        registry.add(name, schema, database=database)

    tier = ServingTier(registry, config=config)

    warm: dict[str, list[str]] = {}
    for raw in args.prewarm:
        name, expression = _parse_pair(raw, "--prewarm")
        warm.setdefault(name, []).append(expression)
    unknown = sorted(set(warm) - set(schemas))
    if unknown:
        raise SystemExit(
            f"--prewarm names unknown tenant(s): {', '.join(unknown)}"
        )
    for name, expressions in sorted(warm.items()):
        warmed = prewarm_tenant(
            registry.get(name),
            expressions,
            jobs=config.workers,
            executor=config.executor,
        )
        print(
            f"prewarmed {warmed}/{len(expressions)} expression(s) "
            f"for tenant {name!r}",
            file=sys.stderr,
        )
    return tier


async def _serve(tier: ServingTier) -> None:
    await tier.start()
    host, port = tier.address
    print(f"serving on http://{host}:{port}", flush=True)
    await tier.serve_forever()
    print("drained; exiting", flush=True)


def serve(args: argparse.Namespace) -> int:
    """Build the tier from parsed args and serve until drained."""
    tier = build_tier(args)
    try:
        asyncio.run(_serve(tier))
    except KeyboardInterrupt:  # pragma: no cover - SIGINT without handler
        pass
    return 0


def main(argv: list[str] | None = None) -> int:
    return serve(build_parser().parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
