"""The Inheritance Semantics Criterion (paper Section 4.3).

Traditional inheritance resolves a relationship name on the *nearest*
class up the Isa chain.  In path terms: given two complete paths

* ``ψ1 = s @>n_1 ... @>n_j  φ1 N`` and
* ``ψ2 = s @>n_1 ... @>n_j ... @>n_k  φ2 N``   (k > j, φ1, φ2 ≠ @>),

ψ1 *preempts* ψ2 — the root should inherit ``N`` from ``n_j``, not from
the more remote superclass ``n_k``.  No CON/AGG formulation can express
this (it constrains full path expressions, not path prefixes), so the
completion algorithm applies it as a post-condition whenever complete
paths are recorded.

Concretely: ψ1 preempts ψ2 iff

* both end with a non-Isa edge named N;
* ψ1 minus its last edge is a prefix of ψ2;
* the portion of ψ2 between that prefix and its own last edge consists
  of one or more Isa edges.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.algebra.connectors import Connector
from repro.core.ast import ConcretePath

__all__ = ["preempts", "apply_preemption"]


def preempts(shorter: ConcretePath, longer: ConcretePath) -> bool:
    """True if ``shorter`` preempts ``longer`` per the criterion."""
    if shorter.root != longer.root:
        return False
    if not shorter.edges or not longer.edges:
        return False
    last_short = shorter.edges[-1]
    last_long = longer.edges[-1]
    if last_short.name != last_long.name:
        return False
    if (
        last_short.connector is Connector.ISA
        or last_long.connector is Connector.ISA
    ):
        return False
    prefix_length = shorter.length - 1
    if longer.length <= shorter.length:
        return False
    if longer.edges[:prefix_length] != shorter.edges[:prefix_length]:
        return False
    between = longer.edges[prefix_length : longer.length - 1]
    if not between:
        return False
    return all(edge.connector is Connector.ISA for edge in between)


def apply_preemption(
    paths: Sequence[ConcretePath],
) -> tuple[list[ConcretePath], int]:
    """Remove every path preempted by another in the set.

    Returns the surviving paths (original order) and the number removed.
    Preemption is applied against the *full* set, not iteratively: a
    path preempted by another path is removed even if the preemptor is
    itself preempted by a third (traditional nearest-declaration
    semantics makes chains collapse to the nearest anyway).
    """
    removed: set[int] = set()
    for i, shorter in enumerate(paths):
        for j, longer in enumerate(paths):
            if i == j or j in removed:
                continue
            if preempts(shorter, longer):
                removed.add(j)
    survivors = [path for k, path in enumerate(paths) if k not in removed]
    return survivors, len(removed)
