"""Resource governance and fault injection for the completion pipeline.

``repro.resilience`` is the layer that keeps one hostile incomplete
expression from stalling a whole deployment:

* :mod:`repro.resilience.budget` — :class:`Budget` /
  :class:`BudgetMeter`: deadline, node, path, and stack-depth caps
  checked in Algorithm 2's inner loop, with *anytime* partial results
  on a trip and an ambient :func:`use_budget` scope;
* :mod:`repro.resilience.faults` — a deterministic, seeded chaos
  harness (:class:`FaultPlan`, :class:`FaultyGraph`,
  :class:`FaultyCache`, :class:`FakeClock`) that the chaos test suite
  uses to prove the invariants (truncated results never cached,
  sessions and runners survive injected failures);
* :mod:`repro.resilience.retry` — :class:`RetryPolicy`: jittered
  exponential backoff for *transient* failures (shed requests,
  connection resets, injected backend faults), used by the serving
  tier's bundled client and cache prewarming.

See ``docs/resilience.md`` for the budget semantics and the
degradation ladder.
"""

from repro.resilience.budget import (
    Budget,
    BudgetMeter,
    CancelSignal,
    TruncationReason,
    get_budget,
    use_budget,
)
from repro.resilience.faults import (
    FakeClock,
    FaultPlan,
    FaultyCache,
    FaultyGraph,
    inject,
)
from repro.resilience.retry import RetryExhaustedError, RetryPolicy

__all__ = [
    "Budget",
    "BudgetMeter",
    "CancelSignal",
    "FakeClock",
    "FaultPlan",
    "FaultyCache",
    "FaultyGraph",
    "RetryExhaustedError",
    "RetryPolicy",
    "TruncationReason",
    "get_budget",
    "inject",
    "use_budget",
]
