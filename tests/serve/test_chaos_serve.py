"""Chaos against the real server: seeded faults under live concurrency.

The tenant's compiled artifact is rewired through a
:class:`~repro.resilience.faults.FaultPlan` while concurrent HTTP
requests hammer the tier, asserting the serving-tier resilience
contract:

* every response is a mapped status (200/206 success, 503 transient
  fault) — never a 500, never a hang, never a torn connection;
* the completion cache never holds a truncated result, no matter how
  requests were interrupted;
* after the storm the tier serves clean answers again, byte-identical
  to a fault-free engine.
"""

import threading

import pytest

from repro.core.compiled import CompiledSchema
from repro.core.engine import Disambiguator
from repro.resilience.faults import FaultPlan, inject
from repro.serve import ServeConfig

from tests.serve.conftest import make_tier, raw_client

SEEDS = (0, 1, 7)

QUERIES = ["ta ~ name", "student.take.teacher", "teacher ~ name"]


def assert_cache_is_clean(compiled):
    cache = getattr(compiled.cache, "_cache", compiled.cache)
    for value in cache._data.values():
        assert value.exhausted, value.truncation_reason


class TestServeChaos:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fault_storm_under_concurrency(self, university, seed):
        tier = make_tier(
            {"university": university},
            config=ServeConfig(queue_limit=32, workers=4),
        )
        compiled = tier.tenants.get("university").compiled
        try:
            client = raw_client(tier)
            plan = FaultPlan(
                seed=seed,
                edge_fail_rate=0.1,
                cache_miss_rate=0.3,
                cache_drop_rate=0.3,
            )
            responses = []
            lock = threading.Lock()

            def worker(expression: str) -> None:
                response = client.complete(expression)
                with lock:
                    responses.append(response)

            with inject(compiled, plan):
                threads = [
                    threading.Thread(
                        target=worker, args=(QUERIES[i % len(QUERIES)],)
                    )
                    for i in range(12)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60.0)
                assert not any(t.is_alive() for t in threads)
                assert_cache_is_clean(compiled)

            assert len(responses) == 12
            for response in responses:
                assert response.status in (200, 206, 503), (
                    response.status,
                    response.body,
                )
                if response.status == 503:
                    assert response.json.get("transient") is True
                    assert response.retry_after is not None
            assert_cache_is_clean(compiled)

            # The storm is over: the tier answers cleanly and exactly
            # as a fault-free engine would.
            reference = Disambiguator(CompiledSchema(university)).complete(
                "ta ~ name"
            )
            after = client.complete("ta ~ name")
            assert after.status == 200
            assert after.json["paths"] == [str(p) for p in reference.paths]
            assert client.healthz().status == 200
        finally:
            tier.stop(drain=False)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_injected_faults_count_as_transient_not_500(
        self, university, seed
    ):
        tier = make_tier({"university": university})
        compiled = tier.tenants.get("university").compiled
        try:
            client = raw_client(tier)
            plan = FaultPlan(seed=seed, edge_fail_rate=1.0)
            with inject(compiled, plan):
                response = client.complete("ta ~ name")
            assert response.status == 503
            assert response.json["transient"] is True
            text = client.metrics_text()
            assert "repro_serve_internal_errors_total" not in text
        finally:
            tier.stop(drain=False)

    def test_prewarm_through_flaky_backend_via_server_boot(self, university):
        """Prewarm with retry, then serve: the warmed entry answers a
        live request as a cache hit even while the backend is flaky."""
        from repro.serve.tenants import prewarm_tenant
        from repro.resilience.retry import RetryPolicy

        tier = make_tier({"university": university})
        tenant = tier.tenants.get("university")
        try:
            # One cold 'ta ~ name' completion makes ~111 adjacency
            # reads, so even a small per-read rate compounds hard; at
            # 0.01 this seed injects 3 faults before an attempt gets
            # through — real retries, deterministic outcome.
            plan = FaultPlan(seed=1, edge_fail_rate=0.01)
            with inject(tenant.compiled, plan):
                warmed = prewarm_tenant(
                    tenant,
                    ["ta ~ name"],
                    policy=RetryPolicy(
                        max_attempts=8, base_delay=0.0, seed=0
                    ),
                )
            assert warmed == 1
            assert_cache_is_clean(tenant.compiled)
            client = raw_client(tier)
            response = client.complete("ta ~ name")
            assert response.status == 200
            assert response.json["stats"]["cache_hits"] >= 1
        finally:
            tier.stop(drain=False)
