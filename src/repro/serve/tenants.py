"""Multi-tenant schema residency with a global cache memory bound.

The serving tier keeps many schemas resident at once — one
:class:`Tenant` per schema name, each wrapping a shared
:class:`~repro.core.compiled.CompiledSchema` from the process-wide
compile registry (so a tenant added twice, or added by a CLI and a
test, shares one artifact and one warm cache) plus memoized per-E
:class:`~repro.core.engine.Disambiguator` instances and an optional
instance :class:`~repro.model.instances.Database` for ``/v1/query``.

Each tenant's completion cache is already bounded by entry *count*;
what a multi-tenant server additionally needs is a bound on total
*memory* across tenants, enforced with cross-tenant LRU: every request
stamps its tenant with a monotonically increasing touch sequence, and
when the summed :meth:`CompletionCache.estimated_bytes
<repro.core.compiled.CompletionCache.estimated_bytes>` exceeds the
configured bound, entries are evicted from the least recently *touched*
tenant first (each tenant's own cache evicts its LRU entries).  A cold
tenant therefore pays for a hot tenant's traffic — which is the right
way around: the hot tenant's entries are the ones earning their keep.

:func:`prewarm_tenant` warms a tenant's cache through a
:class:`~repro.resilience.retry.RetryPolicy`, so a transient backend
fault (chaos tests inject them) costs a retry, not a cold first
request.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Sequence

from repro.core.compiled import CompiledSchema, compile_schema
from repro.core.engine import Disambiguator
from repro.errors import InjectedFaultError, ReproError
from repro.model.instances import Database
from repro.model.schema import Schema
from repro.obs.metrics import get_metrics
from repro.resilience.retry import RetryExhaustedError, RetryPolicy

__all__ = [
    "Tenant",
    "TenantRegistry",
    "UnknownTenantError",
    "prewarm_tenant",
]


class UnknownTenantError(ReproError):
    """A request named a tenant the registry does not hold."""

    def __init__(self, name: str, known: Sequence[str]) -> None:
        rendered = ", ".join(sorted(known)) or "(none)"
        super().__init__(f"unknown tenant {name!r} (registered: {rendered})")
        self.tenant = name


class Tenant:
    """One resident schema: compiled artifact, engines, optional data."""

    def __init__(
        self,
        name: str,
        compiled: CompiledSchema,
        database: Database | None = None,
    ) -> None:
        self.name = name
        self.compiled = compiled
        self.database = database
        #: Monotonic touch sequence assigned by the registry; the
        #: cross-tenant LRU victim is the smallest value.
        self.last_touch = 0
        self._engines: dict[int, Disambiguator] = {}
        self._lock = threading.Lock()

    def engine(self, e: int = 1) -> Disambiguator:
        """The memoized engine for one E (engines share the artifact).

        An engine binds its searcher to the artifact's graph at
        construction; if the graph has been swapped since (fault
        injection in tests, artifact hot-repair in production), the
        memoized engine is stale and is rebuilt against the current
        graph.  Test doubles without a ``graph`` attribute are treated
        as always-fresh.
        """
        with self._lock:
            engine = self._engines.get(e)
            if engine is not None:
                bound = getattr(engine, "graph", self.compiled.graph)
                if bound is not self.compiled.graph:
                    engine = None
            if engine is None:
                engine = Disambiguator(self.compiled, e=e)
                self._engines[e] = engine
            return engine

    def describe(self) -> dict:
        """The ``/v1/schemas`` entry for this tenant.

        Reads ``self.compiled`` exactly once: a concurrent hot-swap
        (``evolve`` replacing the artifact) must never produce a *torn*
        description mixing one artifact's fingerprint with another's
        lineage depth — health snapshots race schema evolution by
        design.
        """
        compiled = self.compiled
        return {
            "tenant": self.name,
            "schema": compiled.schema.name,
            "fingerprint": compiled.fingerprint[:12],
            "classes": len(compiled.schema.class_names),
            "lineage_depth": len(compiled.lineage),
            "has_database": self.database is not None,
            "completion_cache": compiled.cache.info(),
        }

    def estimated_cache_bytes(self) -> int:
        """This tenant's completion-cache byte estimate (ops endpoint)."""
        return self.compiled.cache.estimated_bytes()


class TenantRegistry:
    """Resident tenants plus the cross-tenant cache memory governor."""

    #: Entries evicted per governor step; small enough to stop right at
    #: the bound, large enough to amortize the per-call locking.
    EVICTION_BATCH = 8

    def __init__(self, max_cache_bytes: int) -> None:
        if max_cache_bytes < 1:
            raise ValueError(
                f"max_cache_bytes must be >= 1, got {max_cache_bytes!r}"
            )
        self.max_cache_bytes = max_cache_bytes
        self._tenants: dict[str, Tenant] = {}
        self._touch_seq = 0
        self._lock = threading.Lock()

    def add(
        self,
        name: str,
        schema: Schema | CompiledSchema,
        database: Database | None = None,
    ) -> Tenant:
        """Register (or re-register) a tenant.

        Compilation goes through the memoized
        :func:`~repro.core.compiled.compile_schema` registry, so equal
        schema content shares one artifact across tenants and across
        the rest of the process.
        """
        compiled = compile_schema(schema)
        tenant = Tenant(name, compiled, database=database)
        with self._lock:
            self._touch_seq += 1
            tenant.last_touch = self._touch_seq
            self._tenants[name] = tenant
        return tenant

    def get(self, name: str) -> Tenant:
        """The tenant, touched for cross-tenant LRU; raises if unknown."""
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is None:
                raise UnknownTenantError(name, list(self._tenants))
            self._touch_seq += 1
            tenant.last_touch = self._touch_seq
            return tenant

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def tenants(self) -> list[Tenant]:
        with self._lock:
            return [self._tenants[name] for name in sorted(self._tenants)]

    def __len__(self) -> int:
        return len(self._tenants)

    # -- the memory governor ------------------------------------------

    def total_cache_bytes(self) -> int:
        """Summed byte estimates of every tenant's completion cache.

        Tenants sharing one compiled artifact (equal schema content)
        share one cache; it is counted once.
        """
        seen: set[int] = set()
        total = 0
        for tenant in self.tenants():
            cache = tenant.compiled.cache
            if id(cache) in seen:
                continue
            seen.add(id(cache))
            total += cache.estimated_bytes()
        return total

    def enforce_memory_bound(self) -> tuple[int, int]:
        """Evict cross-tenant LRU entries until the fleet fits the bound.

        Returns ``(entries_evicted, bytes_freed)``.  Victim order is by
        tenant ``last_touch`` (least recently touched first); within a
        tenant, its cache's own LRU order applies.  Called after every
        cache-filling request — each call does at most the work the
        overshoot requires.
        """
        evicted = freed = 0
        while self.total_cache_bytes() > self.max_cache_bytes:
            with self._lock:
                candidates = sorted(
                    (
                        tenant
                        for tenant in self._tenants.values()
                        if len(tenant.compiled.cache) > 0
                    ),
                    key=lambda tenant: tenant.last_touch,
                )
            if not candidates:
                break  # every cache empty; the bound is simply tiny
            victim = candidates[0]
            count, size = victim.compiled.cache.evict_lru(self.EVICTION_BATCH)
            if count == 0:  # pragma: no cover - raced to empty
                break
            evicted += count
            freed += size
        if evicted:
            metrics = get_metrics()
            metrics.counter("serve.cache_evictions").inc(evicted)
            metrics.counter("serve.cache_bytes_evicted").inc(freed)
        return evicted, freed


def prewarm_tenant(
    tenant: Tenant,
    expressions: Iterable[str],
    e: int = 1,
    policy: RetryPolicy | None = None,
    jobs: int = 1,
    executor: str | None = None,
) -> int:
    """Warm a tenant's completion cache, retrying transient faults.

    Each expression is completed through the tenant's engine; a
    :class:`~repro.errors.InjectedFaultError` (or an ``OSError`` from a
    real flaky backend) is retried under ``policy`` with jittered
    backoff.  Non-transient :class:`~repro.errors.ReproError` failures
    (bad expression, no completion) are *not* retried — the live
    request will surface them with full context.  Returns how many
    expressions ended up warm; never raises.

    ``jobs > 1`` with ``executor="process"`` shards the cold prewarms
    across worker processes first (:func:`repro.core.parallel.prewarm`);
    the sequential retry loop then covers only what the fan-out left
    cold, so fault-retry semantics are preserved for the remainder.
    """
    policy = policy if policy is not None else RetryPolicy()
    engine = tenant.engine(e)
    warmed = 0
    metrics = get_metrics()
    expressions = list(dict.fromkeys(expressions))
    if jobs > 1:
        from repro.core.parallel import prewarm as parallel_prewarm

        try:
            parallel_prewarm(engine, expressions, jobs, executor=executor)
        except Exception:
            # Prewarming is best-effort by contract; the sequential
            # retry loop below still covers every expression.
            metrics.counter("serve.prewarm_pool_failures").inc()

    def count_retry(attempt: int, error: BaseException, delay: float) -> None:
        metrics.counter("serve.prewarm_retries").inc()

    for expression in dict.fromkeys(expressions):
        try:
            policy.call(
                lambda expression=expression: engine.complete(expression),
                retry_on=(InjectedFaultError, OSError),
                on_retry=count_retry,
            )
            warmed += 1
        except (ReproError, RetryExhaustedError):
            continue
    return warmed
