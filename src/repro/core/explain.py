"""Explanations for completion outcomes.

The Figure 1 loop works best when the system can say *why* a completion
the user expected is missing, or why two candidates tie.  Given an
incomplete query and a candidate complete expression, `explain` places
the candidate in one of a few precise verdicts by replaying the algebra:

* ``returned`` — it is in the answer set;
* ``inconsistent`` — wrong root or final relationship name;
* ``invalid`` — not a real path in the schema;
* ``cyclic`` — visits a class twice (ignored by the paper's semantics);
* ``connector_dominated`` — a returned answer's connector is strictly
  better under the Figure 3 order (witness shown);
* ``length_dominated`` — connectors incomparable, but its semantic
  length falls outside the AGG* window for the current E (witness and
  the E that would admit it shown);
* ``tied_but_pruned`` — its label ties the optimum, but the search's
  best[]-bound dropped this realization (the DESIGN.md §4 corner).
"""

from __future__ import annotations

import dataclasses

from repro.algebra.agg import Aggregator
from repro.algebra.labels import PathLabel
from repro.algebra.order import PartialOrder
from repro.core.ast import ConcretePath, PathExpression
from repro.core.completion import CompletionResult, CompletionSearch
from repro.core.parser import parse_path_expression
from repro.core.target import RelationshipTarget
from repro.errors import PathExpressionError
from repro.model.graph import SchemaGraph

__all__ = ["Explanation", "explain_candidate"]


@dataclasses.dataclass(frozen=True)
class Explanation:
    """The verdict on one candidate completion."""

    verdict: str
    candidate: str
    candidate_label: PathLabel | None
    witness: str | None = None
    witness_label: PathLabel | None = None
    admitting_e: int | None = None

    def render(self) -> str:
        """One-paragraph human-readable explanation."""
        if self.verdict == "returned":
            return (
                f"{self.candidate} is in the answer set "
                f"(label {self.candidate_label})."
            )
        if self.verdict == "inconsistent":
            return (
                f"{self.candidate} is not consistent with the query: its "
                "root or final relationship name differs."
            )
        if self.verdict == "invalid":
            return f"{self.candidate} is not a valid path in this schema."
        if self.verdict == "cyclic":
            return (
                f"{self.candidate} visits a class twice; cyclic paths are "
                "ignored (people do not think circularly)."
            )
        if self.verdict == "connector_dominated":
            return (
                f"{self.candidate} carries label {self.candidate_label}, "
                f"but {self.witness} carries {self.witness_label}, whose "
                "connector denotes a strictly stronger relationship."
            )
        if self.verdict == "length_dominated":
            suffix = (
                f" Raising E to {self.admitting_e} would admit it."
                if self.admitting_e is not None
                else ""
            )
            return (
                f"{self.candidate} has label {self.candidate_label}; "
                f"{self.witness} ({self.witness_label}) is semantically "
                f"closer, and the current E window keeps only the nearest "
                f"lengths.{suffix}"
            )
        if self.verdict == "tied_but_pruned":
            return (
                f"{self.candidate} ties the optimal label "
                f"({self.candidate_label}) but this realization was "
                "dropped by the search's best[]-bound (a documented "
                "corner of the paper's Algorithm 2; see DESIGN.md)."
            )
        return f"{self.candidate}: {self.verdict}"


def _resolve(
    graph: SchemaGraph, expression: PathExpression
) -> ConcretePath | None:
    path = ConcretePath.start(expression.root)
    for step in expression.steps:
        edge = next(
            (
                candidate
                for candidate in graph.edges_from(path.target_class)
                if candidate.name == step.name
                and candidate.connector is step.connector
            ),
            None,
        )
        if edge is None:
            return None
        path = path.extend(edge)
    return path


def explain_candidate(
    graph: SchemaGraph,
    query_text: str,
    candidate_text: str,
    e: int = 1,
    order: PartialOrder | None = None,
    result: CompletionResult | None = None,
) -> Explanation:
    """Explain why ``candidate_text`` is or is not an answer to
    ``query_text`` (a simple incomplete expression ``root ~ name``).

    Pass a precomputed ``result`` to avoid re-running the search.
    """
    query = parse_path_expression(query_text)
    if not query.is_simple_incomplete:
        raise PathExpressionError(
            "explain expects the simple incomplete form root ~ name"
        )
    candidate = parse_path_expression(candidate_text)
    if candidate.is_incomplete:
        raise PathExpressionError("the candidate must be complete")

    aggregator = Aggregator(order, e=e)
    if result is None:
        search = CompletionSearch(graph, order=order, e=e)
        result = search.run(query.root, RelationshipTarget(query.last_name))

    rendered = str(candidate)
    if rendered in result.expressions:
        concrete = _resolve(graph, candidate)
        return Explanation(
            verdict="returned",
            candidate=rendered,
            candidate_label=concrete.label() if concrete else None,
        )

    if (
        candidate.root != query.root
        or not candidate.steps
        or candidate.last_name != query.last_name
    ):
        return Explanation(
            verdict="inconsistent", candidate=rendered, candidate_label=None
        )

    concrete = _resolve(graph, candidate)
    if concrete is None:
        return Explanation(
            verdict="invalid", candidate=rendered, candidate_label=None
        )
    if not concrete.is_acyclic:
        return Explanation(
            verdict="cyclic",
            candidate=rendered,
            candidate_label=concrete.label(),
        )

    label = concrete.label()
    order = aggregator.order
    # find the strongest witness among the returned answers
    for path in result.paths:
        winner = path.label()
        if order.better(winner.connector, label.connector):
            return Explanation(
                verdict="connector_dominated",
                candidate=rendered,
                candidate_label=label,
                witness=str(path),
                witness_label=winner,
            )
    for path in result.paths:
        winner = path.label()
        if (
            order.incomparable(winner.connector, label.connector)
            and winner.semantic_length < label.semantic_length
        ):
            admitting = _admitting_e(
                graph, query, label, order
            )
            return Explanation(
                verdict="length_dominated",
                candidate=rendered,
                candidate_label=label,
                witness=str(path),
                witness_label=winner,
                admitting_e=admitting,
            )
    if any(
        path.label().key == label.key for path in result.paths
    ) or aggregator.keeps(label, [p.label() for p in result.paths]):
        return Explanation(
            verdict="tied_but_pruned",
            candidate=rendered,
            candidate_label=label,
        )
    return Explanation(
        verdict="not_returned",
        candidate=rendered,
        candidate_label=label,
    )


def _admitting_e(
    graph: SchemaGraph,
    query: PathExpression,
    label: PathLabel,
    order: PartialOrder,
    max_e: int = 8,
) -> int | None:
    """Smallest E (≤ max_e) at which the candidate's label would appear
    in the answer's label set, or None."""
    for e in range(2, max_e + 1):
        search = CompletionSearch(graph, order=order, e=e)
        result = search.run(
            query.root, RelationshipTarget(query.last_name)
        )
        if any(path.label().key == label.key for path in result.paths):
            return e
    return None
