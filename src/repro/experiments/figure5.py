"""Figure 5 — average recall fraction vs E (paper Section 5.3).

The paper reports average recall around 90%, *unaffected by E*: the
additional, semantically longer paths admitted at larger E were never
among the intended ones.  This module regenerates that series on the
synthetic CUPID workload.
"""

from __future__ import annotations

import dataclasses

from repro.core.domain import DomainKnowledge
from repro.experiments.harness import SweepPoint, sweep_e
from repro.experiments.oracle import DesignerOracle
from repro.experiments.reporting import bar_chart, percent, table
from repro.model.schema import Schema

__all__ = ["Figure5Result", "run_figure5", "render_figure5"]

#: The paper's reported series (approximate, read off the figure).
PAPER_AVERAGE_RECALL = 0.90


@dataclasses.dataclass(frozen=True)
class Figure5Result:
    """The recall series plus the paper's reference value."""

    points: tuple[SweepPoint, ...]
    paper_average_recall: float = PAPER_AVERAGE_RECALL

    @property
    def recall_series(self) -> list[tuple[int, float]]:
        return [(point.e, point.average_recall) for point in self.points]

    @property
    def is_flat(self) -> bool:
        """The paper's headline: recall does not move with E."""
        values = [point.average_recall for point in self.points]
        return max(values) - min(values) < 1e-9


def run_figure5(
    schema: Schema,
    oracle: DesignerOracle,
    e_values: tuple[int, ...] = (1, 2, 3, 4, 5),
    domain_knowledge: DomainKnowledge | None = None,
    continue_on_error: bool = False,
    retries: int = 0,
    jobs: int = 1,
) -> Figure5Result:
    """Compute the average-recall-vs-E series."""
    points = sweep_e(
        schema,
        oracle,
        e_values=e_values,
        domain_knowledge=domain_knowledge,
        continue_on_error=continue_on_error,
        retries=retries,
        jobs=jobs,
    )
    return Figure5Result(points=tuple(points))


def render_figure5(result: Figure5Result) -> str:
    """Text rendering of Figure 5."""
    rows = [
        (point.e, percent(point.average_recall), f"{point.average_returned:.1f}")
        for point in result.points
    ]
    chart = bar_chart(
        [f"E={point.e}" for point in result.points],
        [point.average_recall for point in result.points],
    )
    return "\n".join(
        [
            "Figure 5: Average Recall Fraction vs E",
            f"(paper: ~{result.paper_average_recall:.0%}, flat in E)",
            "",
            table(["E", "avg recall", "avg |S|"], rows),
            "",
            chart,
        ]
    )
