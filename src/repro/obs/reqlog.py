"""Request identity and the structured access log.

The serving tier's signals — labelled Prometheus series, the slow-query
log, the search audit log, per-request traces — were uncorrelated:
given one slow or shed response there was no way to walk from the
symptom to the exact trace and budget decisions that produced it.  This
module supplies the correlation key and the first place it lands:

* **Request IDs.**  Every request gets one: an inbound ``X-Request-Id``
  is honoured after sanitation (:func:`clean_request_id` — bounded
  length, conservative charset, so a hostile header cannot smuggle
  bytes into logs), otherwise :func:`mint_request_id` generates a fresh
  UUID hex.  The ID is stamped into the response header, the access
  log, the slow-log entry's attributes, the audit log's ``search``
  record, and the root span of a sampled trace.

* **Ambient request context.**  :class:`RequestContext` rides a
  :mod:`contextvars` ContextVar (:func:`use_request` /
  :func:`get_request` / :func:`get_request_id`) in the style of the
  tracer and metrics registry, so the engine-side hooks (slowlog,
  audit) pick the ID up without any parameter threading.  The default
  is ``None`` and every consumer guards on it, preserving the
  no-instrumentation overhead contract.

* **Head sampling.**  :class:`HeadSampler` decides *at admission*
  whether a request gets a recording tracer (``trace_sample_rate``),
  with a seedable RNG for deterministic tests and cheap counters for
  the ops endpoint.  Tail retention of slow/truncated/errored requests
  is the slow log's job (see ``promote_failures``), head sampling only
  adds a representative cross-section of *healthy* traffic.

* **The access log.**  :class:`AccessLog` keeps a bounded ring of
  structured per-request records (method, route, tenant, status,
  latency, budget outcome, shed/drain reason, cache hit, sample
  decision, request ID) and optionally appends each record to a JSONL
  file sink.  Records carry ``version`` :data:`ACCESS_LOG_VERSION` and
  validate against the checked-in ``access_record.schema.json``.
"""

from __future__ import annotations

import contextlib
import json
import random
import threading
import time
import uuid
from collections import deque
from contextvars import ContextVar
from typing import IO, Iterator

__all__ = [
    "ACCESS_LOG_VERSION",
    "AccessLog",
    "HeadSampler",
    "REQUEST_ID_HEADER",
    "RequestContext",
    "clean_request_id",
    "get_request",
    "get_request_id",
    "mint_request_id",
    "use_request",
]

#: Record format version stamped on every exported access record.
ACCESS_LOG_VERSION = 1

#: The request/response header carrying the correlation ID (lowercase:
#: the HTTP parser lowercases inbound header names).
REQUEST_ID_HEADER = "x-request-id"

#: Inbound IDs are accepted only from this conservative charset and
#: length — anything else is replaced with a minted ID rather than
#: propagated into logs verbatim.
_ID_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)
_MAX_ID_LENGTH = 128

#: Outcome labels an access record can carry (the schema enum).
OUTCOMES = (
    "ok",
    "partial",
    "shed",
    "drain",
    "transient",
    "client_error",
    "error",
)


def mint_request_id() -> str:
    """A fresh 32-hex-character request ID."""
    return uuid.uuid4().hex


def clean_request_id(raw: str | None) -> str | None:
    """The inbound ``X-Request-Id`` if it is safe to honour, else None.

    Returns ``None`` (mint instead) for missing, empty, over-long, or
    out-of-charset values — a client-supplied ID is a convenience for
    cross-system correlation, never a channel into the logs.
    """
    if not raw:
        return None
    if len(raw) > _MAX_ID_LENGTH:
        return None
    if not all(ch in _ID_CHARS for ch in raw):
        return None
    return raw


class RequestContext:
    """The per-request identity the serving tier installs ambiently.

    ``request_id`` is the correlation key; ``sampled`` records the head
    sampler's decision so the worker-side job knows whether to install
    a recording tracer and promote the slow-log entry.
    """

    __slots__ = ("request_id", "sampled")

    def __init__(self, request_id: str, sampled: bool = False) -> None:
        self.request_id = request_id
        self.sampled = sampled

    def __repr__(self) -> str:
        return (
            f"RequestContext({self.request_id!r}, sampled={self.sampled})"
        )


_ACTIVE: ContextVar[RequestContext | None] = ContextVar(
    "repro_request", default=None
)


def get_request() -> RequestContext | None:
    """The ambient request context, or ``None`` outside a request."""
    return _ACTIVE.get()


def get_request_id() -> str | None:
    """The ambient request ID, or ``None`` outside a request."""
    context = _ACTIVE.get()
    return context.request_id if context is not None else None


@contextlib.contextmanager
def use_request(context: RequestContext | None) -> Iterator[
    RequestContext | None
]:
    """Install ``context`` as the ambient request for the with-block."""
    token = _ACTIVE.set(context)
    try:
        yield context
    finally:
        _ACTIVE.reset(token)


class HeadSampler:
    """Bernoulli head sampling with observable counters.

    One decision per request at admission; ``rate`` is the probability
    a request gets a recording tracer.  ``seed`` makes the decision
    sequence deterministic for tests; production leaves it ``None``.
    Thread-safe — decisions may come from the event loop or tests.
    """

    def __init__(self, rate: float, seed: int | None = None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate!r}")
        self.rate = rate
        self._rng = random.Random(seed) if seed is not None else random.Random()
        self._decisions = 0
        self._sampled = 0
        self._lock = threading.Lock()

    def sample(self) -> bool:
        """Decide one request; counts the decision either way."""
        with self._lock:
            self._decisions += 1
            if self.rate <= 0.0:
                return False
            hit = self.rate >= 1.0 or self._rng.random() < self.rate
            if hit:
                self._sampled += 1
            return hit

    def stats(self) -> dict:
        """Counters for the ops endpoint (`/v1/debug`)."""
        with self._lock:
            return {
                "rate": self.rate,
                "decisions": self._decisions,
                "sampled": self._sampled,
            }


class AccessLog:
    """A bounded ring of structured access records, with a file sink.

    ``capacity`` bounds in-memory retention (oldest records fall off);
    ``path`` optionally appends every record as one JSON line to a
    file, flushed per record so a crash loses at most the in-flight
    line.  ``record`` is thread-safe; the serving tier calls it once
    per response from the event loop.
    """

    enabled = True

    def __init__(
        self, capacity: int = 1024, path: str | None = None
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self.path = path
        self._ring: "deque[dict]" = deque(maxlen=capacity)
        self._seq = 0
        self._lock = threading.Lock()
        self._sink: IO[str] | None = (
            open(path, "a", encoding="utf-8") if path is not None else None
        )

    def record(
        self,
        *,
        request_id: str,
        method: str,
        route: str,
        status: int,
        latency_ms: float,
        outcome: str,
        tenant: str | None = None,
        cache_hit: bool | None = None,
        truncation_reason: str | None = None,
        shed_reason: str | None = None,
        sampled: bool = False,
        error: str | None = None,
    ) -> dict:
        """Append one access record; returns the stored dict."""
        with self._lock:
            entry = {
                "version": ACCESS_LOG_VERSION,
                "seq": self._seq,
                "ts": time.time(),
                "request_id": request_id,
                "method": method,
                "route": route,
                "status": status,
                "latency_ms": round(latency_ms, 3),
                "outcome": outcome,
                "tenant": tenant,
                "cache_hit": cache_hit,
                "truncation_reason": truncation_reason,
                "shed_reason": shed_reason,
                "sampled": sampled,
                "error": error,
            }
            self._seq += 1
            self._ring.append(entry)
            if self._sink is not None:
                self._sink.write(json.dumps(entry, sort_keys=True) + "\n")
                self._sink.flush()
        return entry

    def records(self) -> list[dict]:
        """Copies of the retained records, oldest first."""
        with self._lock:
            return [dict(entry) for entry in self._ring]

    def find(self, request_id: str) -> dict | None:
        """The most recent record for ``request_id``, if retained."""
        with self._lock:
            for entry in reversed(self._ring):
                if entry["request_id"] == request_id:
                    return dict(entry)
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def stats(self) -> dict:
        """Occupancy counters for the ops endpoint."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "recorded": self._seq,
                "retained": len(self._ring),
                "capacity": self.capacity,
                "path": self.path,
            }

    def write_jsonl(self, target: str | IO[str]) -> int:
        """Write the retained records as JSON lines; returns the count."""
        records = self.records()
        payload = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in records
        )
        if hasattr(target, "write"):
            target.write(payload)  # type: ignore[union-attr]
        else:
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(payload)
        return len(records)

    def close(self) -> None:
        """Close the file sink (ring stays readable)."""
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None

    def __repr__(self) -> str:
        return (
            f"AccessLog(capacity={self.capacity}, retained={len(self)}, "
            f"path={self.path!r})"
        )
