"""Explanations and Fox queries.

Two layers above the core disambiguation:

* :func:`repro.core.explain.explain_candidate` answers "why wasn't the
  completion I expected returned?" by replaying the algebra;
* :mod:`repro.query.fox` runs for/where/select queries whose paths may
  themselves be incomplete.

Run with::

    python examples/explain_and_query.py
"""

from __future__ import annotations

from repro import Database, build_university_schema
from repro.core.explain import explain_candidate
from repro.model.graph import SchemaGraph
from repro.query.fox import run_fox


def main() -> None:
    schema = build_university_schema()
    graph = SchemaGraph(schema)

    # 1. Why is a candidate not an answer?
    print("ta ~ name — explanations for four candidates:\n")
    for candidate in (
        "ta@>grad@>student@>person.name",          # returned
        "ta@>grad@>student.take.name",             # connector-dominated
        "ta@>grad@>student.take.student@>person.name",  # also dominated
        "ta@>person.name",                         # not a real path
    ):
        explanation = explain_candidate(graph, "ta ~ name", candidate)
        print(f"  [{explanation.verdict}]")
        print(f"  {explanation.render()}\n")

    # 2. Fox queries over a populated database.
    db = Database(schema)
    arts = db.create("department")
    db.set_attribute(arts, "name", "arts")
    carol = db.create("professor")
    db.set_attribute(carol, "name", "carol")
    db.link(arts, "professor", carol)

    painting = db.create("course")
    db.set_attribute(painting, "name", "painting-101")
    db.link(carol, "teach", painting)

    for name, ssn in (("alice", 100), ("bob", 200)):
        student = db.create("student")
        db.set_attribute(student, "name", name)
        db.set_attribute(student, "ssn", ssn)
        db.link(student, "take", painting)
        db.link(student, "department", arts)

    queries = (
        "for s in student select s@>person.name, s.take.name",
        "for s in student where s@>person.ssn > 150 select s@>person.name",
        "for d in department where d$>professor exists select d ~ name",
        'for c in course where c.teacher~name = "carol" select c.name',
    )
    for text in queries:
        print(f"fox> {text}")
        for row in run_fox(db, text):
            rendered = "  |  ".join(
                ", ".join(sorted(map(str, values)))
                for values in row.values
            )
            print(f"     {row.binding}: {rendered}")
        print()


if __name__ == "__main__":
    main()
