"""Plain-text rendering of experiment results.

The original figures are line charts; the offline environment has no
plotting stack, so the harness prints the same series as aligned tables
plus a small ASCII bar chart — enough to eyeball the shapes the paper
reports (flat recall, falling precision, per-query time variance).
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["table", "bar_chart", "percent"]


def percent(value: float) -> str:
    """Format a 0..1 fraction as a percentage string."""
    return f"{value * 100:5.1f}%"


def table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned text table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(
            value.ljust(widths[index]) for index, value in enumerate(row)
        ).rstrip()

    separator = "  ".join("-" * width for width in widths)
    lines = [fmt(list(headers)), separator]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart (one row per label)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    peak = max(values) if values else 0.0
    label_width = max((len(label) for label in labels), default=0)
    lines = []
    for label, value in zip(labels, values):
        bar_length = 0 if peak == 0 else round(width * value / peak)
        lines.append(
            f"{label.ljust(label_width)} | "
            f"{'#' * bar_length}{' ' * (width - bar_length)} "
            f"{value:.3g}{unit}"
        )
    return "\n".join(lines)
