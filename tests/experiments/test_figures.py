"""Tests for the figure regenerators.

The headline E=1 point and the curve *shapes* are asserted on the real
CUPID workload (E swept only to 2 here to keep the suite fast; the
benchmarks sweep the full range).
"""

import pytest

from repro.experiments.figure5 import render_figure5, run_figure5
from repro.experiments.figure6 import render_figure6, run_figure6
from repro.experiments.figure7 import render_figure7, run_figure7
from repro.experiments.intext import render_intext_stats, run_intext_stats
from repro.experiments.workload import (
    build_cupid_workload,
    designer_domain_knowledge,
)


@pytest.fixture(scope="module")
def oracle():
    return build_cupid_workload()


class TestFigure5:
    def test_recall_is_90_percent_and_flat(self, cupid, oracle):
        result = run_figure5(cupid, oracle, e_values=(1, 2))
        assert result.recall_series == [(1, 0.9), (2, 0.9)]
        assert result.is_flat

    def test_rendering(self, cupid, oracle):
        result = run_figure5(cupid, oracle, e_values=(1,))
        text = render_figure5(result)
        assert "Figure 5" in text
        assert "90" in text


class TestFigure6:
    def test_precision_100_at_e1_and_declining(self, cupid, oracle):
        result = run_figure6(
            cupid, oracle, designer_domain_knowledge(), e_values=(1, 2)
        )
        assert result.without_dk[0].average_precision == 1.0
        assert result.with_dk[0].average_precision == 1.0
        assert (
            result.without_dk[1].average_precision
            < result.without_dk[0].average_precision
        )

    def test_domain_knowledge_improves_precision(self, cupid, oracle):
        result = run_figure6(
            cupid, oracle, designer_domain_knowledge(), e_values=(1, 2)
        )
        assert result.dk_improves_precision
        assert (
            result.with_dk[1].average_precision
            > result.without_dk[1].average_precision
        )

    def test_domain_knowledge_does_not_change_recall(self, cupid, oracle):
        from repro.experiments.harness import sweep_e

        plain = sweep_e(cupid, oracle, e_values=(1, 2))
        with_dk = sweep_e(
            cupid,
            oracle,
            e_values=(1, 2),
            domain_knowledge=designer_domain_knowledge(),
        )
        for a, b in zip(plain, with_dk):
            assert a.average_recall == b.average_recall == 0.9

    def test_rendering(self, cupid, oracle):
        result = run_figure6(
            cupid, oracle, designer_domain_knowledge(), e_values=(1,)
        )
        text = render_figure6(result)
        assert "Figure 6" in text
        assert "units_registry" in text


class TestFigure7:
    def test_timings_sorted_by_complexity(self, cupid, oracle):
        result = run_figure7(cupid, oracle, e=1)
        calls = [t.recursive_calls for t in result.timings]
        assert calls == sorted(calls)
        assert len(result.timings) == 10

    def test_aggregates(self, cupid, oracle):
        result = run_figure7(cupid, oracle, e=1)
        assert result.average_seconds > 0
        assert result.max_seconds >= result.average_seconds
        assert result.average_seconds_per_call > 0

    def test_rendering(self, cupid, oracle):
        result = run_figure7(cupid, oracle, e=1)
        text = render_figure7(result)
        assert "Figure 7" in text
        assert "q0" in text


class TestInTextStats:
    def test_statistics(self, cupid, oracle):
        stats = run_intext_stats(cupid, oracle, enumeration_cap=2_000)
        assert stats.classes == 92
        assert stats.relationships == 364
        # the paper: "an average of over 500" consistent paths
        assert stats.consistent_exceeds_500
        # the paper: "only 2-3 of them are returned ... when E=1"
        assert 1.0 <= stats.average_returned_e1 <= 3.0
        assert stats.average_answer_length_e1 > 1.0

    def test_rendering(self, cupid, oracle):
        stats = run_intext_stats(cupid, oracle, enumeration_cap=1_000)
        text = render_intext_stats(stats)
        assert "92 classes" in text
        assert "avg returned at E=1" in text
