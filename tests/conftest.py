"""Shared fixtures: the example schemas, their graphs, and engines.

The CUPID-scale schema and anything derived from it are session-scoped —
they are deterministic and immutable, and several experiment tests reuse
them.  Tests that mutate a schema build their own.
"""

from __future__ import annotations

import pytest

from repro.core.engine import Disambiguator
from repro.model.graph import SchemaGraph
from repro.schemas.cupid import build_cupid_schema
from repro.schemas.parts import build_parts_schema
from repro.schemas.university import build_university_schema


@pytest.fixture()
def university():
    return build_university_schema()


@pytest.fixture()
def university_graph(university):
    return SchemaGraph(university)


@pytest.fixture()
def university_engine(university):
    return Disambiguator(university)


@pytest.fixture()
def parts():
    return build_parts_schema()


@pytest.fixture(scope="session")
def cupid():
    return build_cupid_schema()


@pytest.fixture(scope="session")
def cupid_graph(cupid):
    return SchemaGraph(cupid)


@pytest.fixture(scope="session")
def cupid_engine(cupid):
    return Disambiguator(cupid)
