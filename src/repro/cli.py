"""Command-line interface.

Installed as the ``repro`` console script.  Subcommands::

    repro complete  [--schema FILE | --builtin NAME] [-e N] [--jobs N]
                    [--exclude CLS ...] [--verbose] EXPRESSION ...
    repro enumerate [--schema FILE | --builtin NAME] [--limit N] EXPRESSION
    repro profile   [--schema FILE | --builtin NAME] [--suggest-hubs]
    repro query     --db FILE QUERY
    repro convert   INPUT OUTPUT          # schema DSL <-> JSON by extension
    repro experiments [--quick] [--jobs N]
    repro designer  [--mode both|incremental|rebuild] [-e N]

Schemas are loaded from ``.json`` (repro-schema documents) or any other
extension (treated as DSL text); ``--builtin`` selects one of the
bundled schemas (``university``, ``cupid``, ``parts``).

Observability (``complete``, ``query``, ``fox``, ``experiments``):
``--trace`` prints the nested span tree of the run; ``--trace=FILE``
writes the JSON-lines event log to FILE instead; ``--metrics`` prints
the schema-validated metrics summary; ``--prom[=FILE]`` prints or
writes the metrics in Prometheus text exposition format;
``--slow-log[=FILE]`` retains slow queries tail-based (``--slow-ms``
sets the threshold) and prints or writes them as schema-validated
JSONL; ``--profile[=FILE]`` attaches cProfile to the span taxonomy and
prints a per-span report or writes flamegraph-ready collapsed stacks.
See ``docs/observability.md``.

Resilience (same subcommands): ``--deadline-ms`` / ``--max-nodes``
install an ambient completion budget; on a trip the command fails with
exit code 3 and prints the best-so-far candidates, unless
``--partial-ok`` is given, in which case the flagged partial result is
reported normally.  See ``docs/resilience.md``.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from pathlib import Path

from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.profile import SpanProfiler
from repro.obs.promtext import render_prometheus, write_prometheus
from repro.obs.slowlog import SlowQueryLog, use_slowlog
from repro.obs.tracer import RecordingTracer, use_tracer
from repro.resilience.budget import Budget, use_budget

from repro.core.compiled import compile_schema
from repro.core.domain import DomainKnowledge
from repro.core.engine import Disambiguator
from repro.core.enumerate import enumerate_consistent_paths
from repro.core.kernel import KERNEL_MODES
from repro.core.procpool import EXECUTOR_ENV_VAR, EXECUTOR_MODES
from repro.core.parser import parse_path_expression
from repro.core.printer import format_result
from repro.core.target import RelationshipTarget
from repro.errors import BudgetExceededError, ReproError
from repro.model.analysis import profile_schema, suggest_hub_exclusions
from repro.model.dsl import parse_schema_dsl, schema_to_dsl
from repro.model.graph import SchemaGraph
from repro.model.persistence import load_database
from repro.model.schema import Schema
from repro.model.serialization import load_schema, save_schema
from repro.query.language import run_query
from repro.schemas.cupid import build_cupid_schema
from repro.schemas.hospital import build_hospital_schema
from repro.schemas.parts import build_parts_schema
from repro.schemas.university import build_university_schema

__all__ = ["main", "build_parser"]

_BUILTINS = {
    "university": build_university_schema,
    "cupid": build_cupid_schema,
    "hospital": build_hospital_schema,
    "parts": build_parts_schema,
}


def _load_schema_arg(args: argparse.Namespace) -> Schema:
    if getattr(args, "builtin", None):
        return _BUILTINS[args.builtin]()
    path = Path(args.schema)
    if path.suffix == ".json":
        return load_schema(path)
    return parse_schema_dsl(path.read_text())


def _add_schema_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--schema", metavar="FILE", help="schema file (.json or DSL text)"
    )
    group.add_argument(
        "--builtin",
        choices=sorted(_BUILTINS),
        help="use a bundled example schema",
    )


def _add_obs_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help=(
            "record tracing spans; print the span tree, or write a "
            "JSON-lines event log to FILE if given"
        ),
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics summary (counters/gauges/histograms) as JSON",
    )
    parser.add_argument(
        "--prom",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help=(
            "print the metrics in Prometheus text exposition format, or "
            "write one scrape snapshot to FILE if given"
        ),
    )
    parser.add_argument(
        "--slow-log",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help=(
            "tail-based slow-query log: print the retained entries, or "
            "write them as schema-validated JSONL to FILE if given"
        ),
    )
    parser.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "retention threshold for --slow-log (queries over MS "
            "milliseconds are always kept; default: top-K only)"
        ),
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help=(
            "attach cProfile to the span taxonomy; print the per-span "
            "report, or write flamegraph-ready collapsed stacks to FILE "
            "if given"
        ),
    )


def _add_budget_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="wall-clock budget per completion search (milliseconds)",
    )
    parser.add_argument(
        "--max-nodes",
        type=int,
        default=None,
        metavar="N",
        help="cap on node expansions (recursive calls) per search",
    )
    parser.add_argument(
        "--partial-ok",
        action="store_true",
        help=(
            "on a tripped budget return the flagged best-so-far partial "
            "result instead of failing"
        ),
    )


def _add_jobs_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "pool workers for cold completions (results are "
            "byte-identical to a sequential run)"
        ),
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTOR_MODES,
        default=None,
        help=(
            "worker-pool backend for every cold-completion fan-out this "
            "command runs: 'thread' (default) or 'process' (shards cold "
            "misses across cores; falls back to threads when ambient "
            "state cannot cross the process boundary); defaults to "
            "$REPRO_EXECUTOR"
        ),
    )


def _apply_executor(args: argparse.Namespace) -> None:
    """Make ``--executor`` ambient for the rest of this CLI process.

    The knob already resolves through the ``REPRO_EXECUTOR`` environment
    variable at every pool site (batch, prewarm, figure workloads), so
    setting it once here governs them all uniformly.
    """
    executor = getattr(args, "executor", None)
    if executor is not None:
        os.environ[EXECUTOR_ENV_VAR] = executor


def _budget_from(args: argparse.Namespace) -> Budget | None:
    """Build the ambient budget requested by the CLI flags (or None)."""
    deadline_ms = getattr(args, "deadline_ms", None)
    max_nodes = getattr(args, "max_nodes", None)
    if deadline_ms is None and max_nodes is None:
        return None
    return Budget.from_millis(
        deadline_ms,
        max_nodes=max_nodes,
        partial_ok=getattr(args, "partial_ok", False),
    )


@contextlib.contextmanager
def _observability(args: argparse.Namespace):
    """Install the telemetry requested by the observability flags.

    ``--trace`` installs a recording tracer, ``--metrics``/``--prom``
    a metrics registry, ``--slow-log`` a tail-based slow-query log,
    ``--profile`` a span profiler wrapping the tracer, and
    ``--deadline-ms``/``--max-nodes`` the ambient budget.  Yields the
    metrics registry (or ``None``) so handlers can report counters.

    Reports are emitted in a ``finally`` block: a budget trip (exit
    code 3) still flushes the slow log and trace — those artifacts
    matter *most* for the queries that blew their budget.
    """
    trace_target = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    prom_target = getattr(args, "prom", None)
    slowlog_target = getattr(args, "slow_log", None)
    profile_target = getattr(args, "profile", None)
    verbose = getattr(args, "verbose", False)
    tracer = RecordingTracer() if trace_target else None
    registry = (
        MetricsRegistry()
        if (want_metrics or prom_target or verbose)
        else None
    )
    slowlog = (
        SlowQueryLog(threshold_ms=getattr(args, "slow_ms", None))
        if slowlog_target
        else None
    )
    profiler = SpanProfiler(inner=tracer) if profile_target else None
    budget = _budget_from(args)
    try:
        with contextlib.ExitStack() as stack:
            if profiler is not None:
                stack.enter_context(use_tracer(profiler))
            elif tracer is not None:
                stack.enter_context(use_tracer(tracer))
            if registry is not None:
                stack.enter_context(use_metrics(registry))
            if slowlog is not None:
                stack.enter_context(use_slowlog(slowlog))
            if budget is not None:
                stack.enter_context(use_budget(budget))
            yield registry
    finally:
        if tracer is not None:
            if trace_target == "-":
                print(tracer.render())
            else:
                count = tracer.write_jsonl(trace_target)
                print(f"[trace: {count} event(s) written to {trace_target}]")
        if profiler is not None:
            if profile_target == "-":
                print(profiler.report())
            else:
                count = profiler.write_collapsed(profile_target)
                print(
                    f"[profile: {count} collapsed stack(s) written to "
                    f"{profile_target}]"
                )
        if slowlog is not None:
            if slowlog_target == "-":
                print(slowlog.render())
            else:
                count = slowlog.write_jsonl(slowlog_target)
                print(
                    f"[slow-log: {count} entr"
                    f"{'y' if count == 1 else 'ies'} written to "
                    f"{slowlog_target}]"
                )
        if prom_target is not None:
            if prom_target == "-":
                sys.stdout.write(render_prometheus(registry))
            else:
                count = write_prometheus(registry, prom_target)
                print(f"[prom: {count} line(s) written to {prom_target}]")
        if want_metrics and registry is not None:
            print(json.dumps(registry.as_dict(), indent=2, sort_keys=True))


def _cmd_complete(args: argparse.Namespace) -> int:
    schema = _load_schema_arg(args)
    knowledge = (
        DomainKnowledge.excluding(*args.exclude)
        if args.exclude
        else DomainKnowledge.none()
    )
    _apply_executor(args)
    with _observability(args) as registry:
        compiled = compile_schema(schema, domain_knowledge=knowledge)
        engine = Disambiguator(compiled, e=args.e, kernel=args.kernel)
        batch = engine.complete_batch(args.expression, jobs=args.jobs)
        for index, result in enumerate(batch):
            if index:
                print()
            print(format_result(result, verbose=args.verbose))
        if args.verbose:
            print(
                f"[compiled {compiled.fingerprint[:16]}... in "
                f"{compiled.compile_seconds * 1000:.1f}ms]"
            )
            info = engine.cache_info()
            print(
                f"[cache: {info['hits']:.0f} hit(s) / "
                f"{info['misses']:.0f} miss(es), "
                f"size {info['size']:.0f}/{info['maxsize']:.0f}]"
            )
            if registry is not None:
                trips = registry.counter("budget.trips").value
                degrades = registry.counter("budget.degrades").value
                print(
                    f"[budget: {trips:.0f} trip(s), "
                    f"{degrades:.0f} degrade(s)]"
                )
    return 0 if all(result.paths for result in batch) else 1


def _cmd_enumerate(args: argparse.Namespace) -> int:
    schema = _load_schema_arg(args)
    expression = parse_path_expression(args.expression)
    if not expression.is_simple_incomplete:
        print(
            "enumerate expects the simple incomplete form  root ~ name",
            file=sys.stderr,
        )
        return 2
    graph = SchemaGraph(schema)
    paths = enumerate_consistent_paths(
        graph,
        expression.root,
        RelationshipTarget(expression.last_name),
        max_paths=args.limit,
        max_visits=args.limit * 100 if args.limit else None,
    )
    for path in paths:
        print(f"{path}  {path.label()}")
    suffix = " (truncated)" if args.limit and len(paths) >= args.limit else ""
    print(f"-- {len(paths)} consistent acyclic path(s){suffix}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    schema = _load_schema_arg(args)
    print(profile_schema(schema).render())
    print(f"fingerprint: {schema.fingerprint()}")
    if args.suggest_hubs:
        hubs = suggest_hub_exclusions(schema)
        if hubs:
            print("suggested auxiliary-class exclusions: " + ", ".join(hubs))
        else:
            print("no auxiliary hub candidates found")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    database = load_database(args.db)
    _apply_executor(args)
    with _observability(args):
        result = run_query(database, args.query, jobs=args.jobs)
        for expression, values in result.per_completion:
            rendered = sorted(map(str, values)) if values else "(empty)"
            print(f"{expression} = {rendered}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    schema = _load_schema_arg(args)
    if args.analyze:
        # EXPLAIN ANALYZE: re-run the search cold under an audit log
        # and print the decision tree plus the score decomposition.
        from repro.core.audit import audit_completion

        _, audit = audit_completion(
            compile_schema(schema), args.query, e=args.e
        )
        print(audit.render())
        if args.audit_out:
            count = audit.write_jsonl(args.audit_out)
            print(f"wrote {count} audit record(s) to {args.audit_out}")
        return 0
    if args.candidate is None:
        print(
            "error: a CANDIDATE is required unless --analyze is given",
            file=sys.stderr,
        )
        return 2
    engine = Disambiguator(schema, e=args.e)
    explanation = engine.explain(args.query, args.candidate)
    print(f"[{explanation.verdict}]")
    print(explanation.render())
    return 0


def _cmd_fox(args: argparse.Namespace) -> int:
    from repro.query.fox import run_fox

    database = load_database(args.db)
    _apply_executor(args)
    with _observability(args):
        rows = run_fox(database, args.query, jobs=args.jobs)
        for row in rows:
            rendered = "  |  ".join(
                ", ".join(sorted(map(str, values))) if values else "(empty)"
                for values in row.values
            )
            print(f"{row.binding}: {rendered}")
        print(f"-- {len(rows)} row(s)")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    source = Path(args.input)
    destination = Path(args.output)
    schema = (
        load_schema(source)
        if source.suffix == ".json"
        else parse_schema_dsl(source.read_text())
    )
    if destination.suffix == ".json":
        save_schema(schema, destination)
    else:
        destination.write_text(schema_to_dsl(schema))
    print(f"wrote {destination} ({schema.summary()})")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_all

    _apply_executor(args)
    with _observability(args):
        run_all(quick=args.quick, jobs=args.jobs)
    return 0


def _cmd_designer(args: argparse.Namespace) -> int:
    from repro.experiments.designer import (
        compare_designer_modes,
        render_designer_session,
        run_designer_session,
    )

    with _observability(args):
        if args.mode == "both":
            incremental, rebuild = compare_designer_modes(e=args.e)
            print(render_designer_session(incremental, rebuild))
        else:
            result = run_designer_session(mode=args.mode, e=args.e)
            print(render_designer_session(result))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.__main__ import serve

    return serve(args)


def _parse_server_url(url: str) -> tuple[str, int]:
    from urllib.parse import urlsplit

    parts = urlsplit(url if "//" in url else f"http://{url}")
    if parts.hostname is None or parts.port is None:
        raise ReproError(
            f"--url must include host and port, got {url!r}"
        )
    return parts.hostname, parts.port


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient

    host, port = _parse_server_url(args.url)
    if args.action in ("complete", "query") and args.text is None:
        raise ReproError(f"{args.action!r} requires a text argument")
    client = ServeClient(host, port)
    if args.action == "complete":
        response = client.complete(
            args.text,
            tenant=args.tenant,
            e=args.e,
            deadline_ms=args.deadline_ms,
            max_nodes=args.max_nodes,
        )
    elif args.action == "query":
        response = client.query(
            args.text, tenant=args.tenant, deadline_ms=args.deadline_ms
        )
    elif args.action == "schemas":
        response = client.schemas()
    elif args.action == "healthz":
        response = client.healthz()
    elif args.action == "debug":
        response = client.debug()
    else:  # metrics
        print(client.metrics_text(), end="")
        return 0
    print(json.dumps(response.json, indent=2, sort_keys=True))
    if response.status == 206:
        return 3  # partial answer, same convention as budget trips
    return 0 if response.ok else 2


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Incomplete path expressions and their disambiguation "
            "(SIGMOD 1994 reproduction)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    complete = subparsers.add_parser(
        "complete", help="disambiguate (possibly incomplete) expressions"
    )
    _add_schema_options(complete)
    complete.add_argument("expression", nargs="+")
    complete.add_argument(
        "-e", type=int, default=1, help="AGG* relaxation parameter (>=1)"
    )
    complete.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="CLASS",
        help=(
            "domain knowledge: a class excluded from completions "
            "(repeatable)"
        ),
    )
    complete.add_argument("--verbose", action="store_true")
    complete.add_argument(
        "--kernel",
        choices=KERNEL_MODES,
        default=None,
        help=(
            "search-kernel implementation: 'interpreted' (reference "
            "Algorithm 2 loop) or 'flat' (specialized integer-indexed "
            "kernel, byte-identical paths); defaults to $REPRO_KERNEL"
        ),
    )
    _add_jobs_option(complete)
    _add_obs_options(complete)
    _add_budget_options(complete)
    complete.set_defaults(handler=_cmd_complete)

    enumerate_parser = subparsers.add_parser(
        "enumerate", help="list all consistent acyclic completions"
    )
    _add_schema_options(enumerate_parser)
    enumerate_parser.add_argument("expression")
    enumerate_parser.add_argument("--limit", type=int, default=1000)
    enumerate_parser.set_defaults(handler=_cmd_enumerate)

    profile = subparsers.add_parser(
        "profile", help="structural profile of a schema"
    )
    _add_schema_options(profile)
    profile.add_argument("--suggest-hubs", action="store_true")
    profile.set_defaults(handler=_cmd_profile)

    query = subparsers.add_parser(
        "query", help="run a query against a saved database"
    )
    query.add_argument("--db", required=True, metavar="FILE")
    query.add_argument("query")
    _add_jobs_option(query)
    _add_obs_options(query)
    _add_budget_options(query)
    query.set_defaults(handler=_cmd_query)

    explain = subparsers.add_parser(
        "explain",
        help="why is a candidate completion (not) an answer to a query?",
    )
    _add_schema_options(explain)
    explain.add_argument("query", help="incomplete expression, e.g. 'ta ~ name'")
    explain.add_argument(
        "candidate",
        nargs="?",
        default=None,
        help="complete candidate expression (omit with --analyze)",
    )
    explain.add_argument("-e", type=int, default=1)
    explain.add_argument(
        "--analyze",
        action="store_true",
        help="EXPLAIN ANALYZE: audit the full search and print the "
        "decision tree, cut totals, and per-edge score decomposition",
    )
    explain.add_argument(
        "--audit-out",
        metavar="FILE",
        default=None,
        help="with --analyze, also export the audit log as JSONL "
        "(validates against audit_record.schema.json)",
    )
    explain.set_defaults(handler=_cmd_explain)

    fox = subparsers.add_parser(
        "fox", help="run a for/where/select query against a saved database"
    )
    fox.add_argument("--db", required=True, metavar="FILE")
    fox.add_argument("query")
    _add_jobs_option(fox)
    _add_obs_options(fox)
    _add_budget_options(fox)
    fox.set_defaults(handler=_cmd_fox)

    convert = subparsers.add_parser(
        "convert", help="convert a schema between DSL and JSON"
    )
    convert.add_argument("input")
    convert.add_argument("output")
    convert.set_defaults(handler=_cmd_convert)

    experiments = subparsers.add_parser(
        "experiments", help="regenerate every figure of the paper"
    )
    experiments.add_argument("--quick", action="store_true")
    _add_jobs_option(experiments)
    _add_obs_options(experiments)
    _add_budget_options(experiments)
    experiments.set_defaults(handler=_cmd_experiments)

    designer = subparsers.add_parser(
        "designer",
        help=(
            "run the scripted designer session (schema deltas: "
            "incremental maintenance vs rebuild-per-edit)"
        ),
    )
    designer.add_argument(
        "--mode",
        choices=("both", "incremental", "rebuild"),
        default="both",
        help="delta mode(s) to run; 'both' also reports the speedup",
    )
    designer.add_argument(
        "-e", type=int, default=2, help="AGG* relaxation parameter (>=1)"
    )
    _add_obs_options(designer)
    designer.set_defaults(handler=_cmd_designer)

    from repro.serve.__main__ import add_arguments as _add_serve_arguments

    serve = subparsers.add_parser(
        "serve",
        help=(
            "run the always-on HTTP serving tier (admission control, "
            "load shedding, graceful drain)"
        ),
    )
    _add_serve_arguments(serve)
    serve.set_defaults(handler=_cmd_serve)

    client = subparsers.add_parser(
        "client", help="talk to a running serving tier (with retries)"
    )
    client.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="server address (default http://127.0.0.1:8080)",
    )
    client.add_argument(
        "action",
        choices=(
            "complete",
            "query",
            "schemas",
            "healthz",
            "debug",
            "metrics",
        ),
    )
    client.add_argument(
        "text",
        nargs="?",
        default=None,
        help="expression (complete) or query text (query)",
    )
    client.add_argument("--tenant", default=None)
    client.add_argument("-e", type=int, default=1)
    client.add_argument("--deadline-ms", type=float, default=None)
    client.add_argument("--max-nodes", type=int, default=None)
    client.set_defaults(handler=_cmd_client)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BudgetExceededError as error:
        print(f"error: {error}", file=sys.stderr)
        partial = error.partial
        if partial is not None and getattr(partial, "paths", ()):
            print(
                "best-so-far candidates (re-run with --partial-ok to "
                "accept them):",
                file=sys.stderr,
            )
            for path in partial.paths:
                print(f"  {path}", file=sys.stderr)
        return 3
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
