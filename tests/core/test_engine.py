"""Tests for the Disambiguator facade."""

import pytest

from repro.core.engine import Disambiguator
from repro.core.parser import parse_path_expression
from repro.errors import NoCompletionError


class TestComplete:
    def test_accepts_text_and_ast(self, university_engine):
        from_text = university_engine.complete("ta ~ name")
        from_ast = university_engine.complete(
            parse_path_expression("ta~name")
        )
        assert from_text.expressions == from_ast.expressions

    def test_flagship_query(self, university_engine):
        result = university_engine.complete("ta ~ name")
        assert result.expressions == [
            "ta@>grad@>student@>person.name",
            "ta@>instructor@>teacher@>employee@>person.name",
        ]

    def test_complete_input_validates_and_passes_through(
        self, university_engine
    ):
        result = university_engine.complete("student.take.teacher")
        assert result.expressions == ["student.take.teacher"]
        assert result.is_unique

    def test_complete_input_with_unknown_relationship(self, university_engine):
        with pytest.raises(NoCompletionError):
            university_engine.complete("student.ghost")

    def test_complete_input_with_wrong_connector(self, university_engine):
        with pytest.raises(NoCompletionError):
            university_engine.complete("student$>take")

    def test_general_incomplete_expression_dispatches(self, university_engine):
        result = university_engine.complete("ta~take.name")
        assert result.expressions == ["ta@>grad@>student.take.name"]

    def test_unknown_root_raises(self, university_engine):
        from repro.errors import UnknownClassError

        with pytest.raises(UnknownClassError):
            university_engine.complete("ghost ~ name")


class TestTargets:
    def test_complete_between_classes(self, university_engine):
        result = university_engine.complete_between("ta", "course")
        assert result.paths
        assert all(p.edges[-1].target == "course" for p in result.paths)

    def test_complete_to_target(self, university_engine):
        from repro.core.target import RelationshipTarget

        result = university_engine.complete_to_target(
            "ta", RelationshipTarget("ssn")
        )
        assert result.paths


class TestConfiguration:
    def test_with_e_returns_new_engine(self, university):
        engine = Disambiguator(university, e=1)
        wider = engine.with_e(3)
        assert wider.e == 3
        assert engine.e == 1

    def test_e_expands_answers(self, university):
        target = "department ~ ssn"
        narrow = Disambiguator(university, e=1).complete(target)
        wide = Disambiguator(university, e=3).complete(target)
        assert set(narrow.expressions) <= set(wide.expressions)
        assert len(wide.paths) > len(narrow.paths)

    def test_repr_mentions_schema(self, university_engine):
        assert "university" in repr(university_engine)
