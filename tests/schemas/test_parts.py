"""Tests for the part-whole demo schema and the Section 3.3.1 sharing
examples on real schema paths."""

from repro.algebra.connectors import Connector
from repro.core.ast import ConcretePath
from repro.model.graph import SchemaGraph


def _walk(graph, root, steps):
    path = ConcretePath.start(root)
    for source, name in steps:
        edge = next(e for e in graph.edges_from(source) if e.name == name)
        path = path.extend(edge)
    return path


class TestSharingExamples:
    def test_engine_shares_subparts_with_chassis(self, parts):
        graph = SchemaGraph(parts)
        path = _walk(
            graph, "engine", [("engine", "screw"), ("screw", "chassis")]
        )
        label = path.label()
        assert label.connector is Connector.SHARES_SUBPARTS
        assert label.semantic_length == 2

    def test_motor_shares_superparts_with_shaft(self, parts):
        graph = SchemaGraph(parts)
        path = _walk(
            graph, "motor", [("motor", "assembly"), ("assembly", "shaft")]
        )
        label = path.label()
        assert label.connector is Connector.SHARES_SUPERPARTS

    def test_deep_part_chain_collapses(self, parts):
        graph = SchemaGraph(parts)
        path = _walk(
            graph, "vehicle", [("vehicle", "engine"), ("engine", "screw")]
        )
        assert path.label().connector is Connector.HAS_PART
        assert path.semantic_length == 1


class TestCompletionOnParts:
    def test_vehicle_gauge(self, parts):
        from repro.core.completion import complete_paths
        from repro.core.target import RelationshipTarget

        graph = SchemaGraph(parts)
        result = complete_paths(graph, "vehicle", RelationshipTarget("gauge"))
        assert result.expressions == ["vehicle$>engine$>screw.gauge"] or (
            set(result.expressions)
            >= {"vehicle$>engine$>screw.gauge"}
        )
        # all returned paths share the optimal label
        labels = {str(p.label()) for p in result.paths}
        assert len(labels) == 1

    def test_supplier_completion_prefers_direct_association(self, parts):
        from repro.core.completion import complete_paths
        from repro.core.target import RelationshipTarget

        graph = SchemaGraph(parts)
        result = complete_paths(
            graph, "supplier", RelationshipTarget("gauge")
        )
        assert "supplier.supplies.gauge" in result.expressions
