"""Rendering helpers for path expressions and completion results.

The AST classes already stringify (``str(expression)``); this module
adds the multi-line, aligned presentations used by the examples, the
interactive session, and the experiment reports.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.ast import ConcretePath
from repro.core.completion import CompletionResult

__all__ = [
    "format_path",
    "format_candidates",
    "format_result",
    "format_path_verbose",
]


def format_path(path: ConcretePath) -> str:
    """Compact one-line rendering: the path-expression string."""
    return str(path)


def format_path_verbose(path: ConcretePath) -> str:
    """One line per step, with classes and kinds spelled out."""
    lines = [f"{path.root}"]
    for edge in path.edges:
        lines.append(
            f"  {edge.kind.symbol} {edge.name}  ->  {edge.target}"
            f"  ({edge.kind.name.replace('_', '-').title()})"
        )
    label = path.label()
    lines.append(
        f"  label {label}  (actual length {path.length}, "
        f"semantic length {path.semantic_length})"
    )
    return "\n".join(lines)


def format_candidates(
    paths: Sequence[ConcretePath], numbered: bool = True
) -> str:
    """Numbered candidate list for presentation to the user."""
    if not paths:
        return "(no completions)"
    lines = []
    for index, path in enumerate(paths, start=1):
        prefix = f"  [{index}] " if numbered else "  "
        lines.append(f"{prefix}{path}  {path.label()}")
    return "\n".join(lines)


def format_result(result: CompletionResult, verbose: bool = False) -> str:
    """Full report of a completion run, including statistics."""
    header = (
        f"{result.root} ~ {result.target_description}: "
        f"{len(result.paths)} completion(s)"
    )
    body = (
        "\n".join(format_path_verbose(p) for p in result.paths)
        if verbose
        else format_candidates(result.paths)
    )
    footer = f"  [{result.stats}]"
    lines = [header, body, footer]
    if result.is_partial:
        lines.append(
            f"  (partial result: search truncated by budget "
            f"[{result.truncation_reason}]; candidates shown are the "
            "best found so far)"
        )
    return "\n".join(lines)
