"""Microbenchmarks of the path-algebra primitives.

These sit on the completion algorithm's innermost loop; regressions
here multiply directly into Figure 7's response times.
"""

import itertools

import pytest

from repro.algebra.agg import Aggregator
from repro.algebra.caution import compute_caution_sets
from repro.algebra.con_table import con_c
from repro.algebra.connectors import ALL_CONNECTORS, PRIMARY_CONNECTORS
from repro.algebra.labels import PathLabel
from repro.algebra.order import default_order

PAIRS = list(itertools.product(ALL_CONNECTORS, repeat=2))

LABELS = [
    PathLabel.of_path(list(seq))
    for seq in itertools.product(PRIMARY_CONNECTORS, repeat=3)
]


@pytest.mark.benchmark(group="algebra")
def test_con_c_full_table(benchmark):
    def compose_all():
        for a, b in PAIRS:
            con_c(a, b)

    benchmark(compose_all)


@pytest.mark.benchmark(group="algebra")
def test_label_extend(benchmark):
    base = PathLabel.of_path(
        [PRIMARY_CONNECTORS[2], PRIMARY_CONNECTORS[4]]
    )

    def extend_all():
        for connector in PRIMARY_CONNECTORS:
            base.extend(connector)

    benchmark(extend_all)


@pytest.mark.benchmark(group="algebra")
def test_aggregate_small_sets(benchmark):
    aggregator = Aggregator(e=2)
    pools = [LABELS[i : i + 5] for i in range(0, 60, 5)]

    def aggregate_all():
        for pool in pools:
            aggregator.aggregate(pool)

    benchmark(aggregate_all)


@pytest.mark.benchmark(group="algebra")
def test_keeps_fast_path(benchmark):
    aggregator = Aggregator(e=1)
    candidate = LABELS[17]
    against = LABELS[40:44]

    benchmark(lambda: aggregator.keeps(candidate, against))


@pytest.mark.benchmark(group="algebra")
def test_caution_set_computation(benchmark):
    order = default_order()
    sets = benchmark(lambda: compute_caution_sets(order))
    assert any(sets.values())
