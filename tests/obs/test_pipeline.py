"""End-to-end observability tests over the real completion pipeline.

Covers the PR's acceptance criteria: the span taxonomy the engine
emits, the leaf-timings-tile-the-root property of a traced completion,
identical results with and without tracing, the <5% no-op overhead
bound, and the JSONL export round-tripping through the schema
validator.
"""

import json
import time

from repro.core.compiled import CompiledSchema
from repro.core.engine import Disambiguator
from repro.core.target import RelationshipTarget
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.schema import validate_trace_events
from repro.obs.tracer import NullTracer, RecordingTracer, get_tracer, use_tracer

CUPID_QUERY = "experiment ~ conductance"


def _traced_complete(schema, expression, e=1):
    """Run one cold completion on a fresh artifact under a fresh tracer."""
    tracer = RecordingTracer()
    with use_tracer(tracer):
        compiled = CompiledSchema(schema)
        engine = Disambiguator(compiled, e=e)
        result = engine.complete(expression)
    return tracer, result


class TestSpanTaxonomy:
    def test_simple_completion_span_tree(self, cupid):
        tracer, result = _traced_complete(cupid, CUPID_QUERY)
        assert result.paths
        roots = tracer.find("complete")
        assert len(roots) == 1
        child_names = [child.name for child in roots[0].children]
        for expected in [
            "parse",
            "cache_lookup",
            "traverse",
            "agg_select",
            "preemption",
            "rank",
        ]:
            assert expected in child_names, child_names

    def test_traverse_span_carries_work_attrs(self, cupid):
        tracer, result = _traced_complete(cupid, CUPID_QUERY)
        (traverse,) = tracer.find("traverse")
        assert traverse.attrs["calls"] == result.stats.recursive_calls
        assert traverse.attrs["edges"] == result.stats.edges_considered
        assert traverse.attrs["calls"] > 0

    def test_compile_span_recorded(self, cupid):
        tracer = RecordingTracer()
        with use_tracer(tracer):
            compiled = CompiledSchema(cupid)
        (span,) = tracer.find("compile")
        assert span.attrs["fingerprint"] == compiled.fingerprint[:16]
        assert span.attrs["seconds"] > 0

    def test_cache_hit_trace_skips_traverse(self, university):
        tracer = RecordingTracer()
        with use_tracer(tracer):
            engine = Disambiguator(CompiledSchema(university))
            engine.complete("ta ~ name")
            engine.complete("ta ~ name")
        cold, warm = tracer.find("complete")
        assert cold.attrs["cache"] == "miss"
        assert warm.attrs["cache"] == "hit"
        assert any(child.name == "traverse" for child in cold.children)
        assert not any(child.name == "traverse" for child in warm.children)

    def test_general_expression_has_segment_spans(self, university):
        tracer, result = _traced_complete(university, "ta~take~name")
        assert result.paths
        segments = tracer.find("segment")
        assert len(segments) == 2
        assert segments[0].attrs["step"] == "~ take"
        assert segments[1].attrs["step"] == "~ name"


class TestAcceptance:
    def test_leaf_timings_tile_the_root(self, cupid):
        """ISSUE acceptance: leaf span timings sum to the root total
        within +-10% on a CUPID completion."""
        tracer, result = _traced_complete(cupid, CUPID_QUERY)
        assert result.paths
        (root,) = tracer.find("complete")
        leaf_sum = sum(
            span.duration for span, _ in root.walk() if span.is_leaf
        )
        assert root.duration > 0
        assert abs(leaf_sum - root.duration) <= 0.10 * root.duration, (
            f"leaves sum to {leaf_sum * 1000:.2f}ms of "
            f"{root.duration * 1000:.2f}ms total"
        )

    def test_traced_and_untraced_results_identical(self, cupid):
        """Satellite: tracing must not change what the engine returns."""
        untraced = Disambiguator(CompiledSchema(cupid)).complete(CUPID_QUERY)
        tracer, traced = _traced_complete(cupid, CUPID_QUERY)
        assert [str(p) for p in traced.paths] == [
            str(p) for p in untraced.paths
        ]
        assert traced.stats.recursive_calls == untraced.stats.recursive_calls

    def test_noop_tracer_overhead_under_5_percent(self, cupid):
        """Satellite: the no-op tracer adds <5% to a CUPID E=1
        completion.

        Measured robustly: the instrumented pipeline executes a handful
        of null spans per completion, so we bound (spans-per-completion
        x per-null-span cost) against the measured completion time
        rather than comparing two noisy wall-clock runs.
        """
        assert isinstance(get_tracer(), NullTracer)
        compiled = CompiledSchema(cupid)
        searcher = compiled.searcher(e=1)
        target = RelationshipTarget("conductance")
        runs = []
        for _ in range(3):
            start = time.perf_counter()
            searcher.run("experiment", target)
            runs.append(time.perf_counter() - start)
        completion_seconds = sorted(runs)[1]

        tracer = get_tracer()
        iterations = 20_000
        start = time.perf_counter()
        for _ in range(iterations):
            with tracer.span("x", a=1) as span:
                span.set(b=2)
        per_span = (time.perf_counter() - start) / iterations
        # Generous upper bound on spans per instrumented completion
        # (complete + parse + cache_lookup + traverse + agg_select +
        # preemption + rank, plus slack for general expressions).
        spans_per_completion = 32
        overhead = spans_per_completion * per_span
        assert overhead < 0.05 * completion_seconds, (
            f"{overhead * 1e6:.1f}us of null-span overhead vs "
            f"{completion_seconds * 1e3:.2f}ms completion"
        )


class TestExportAndMetrics:
    def test_jsonl_export_round_trips_through_validator(self, cupid, tmp_path):
        tracer, _ = _traced_complete(cupid, CUPID_QUERY)
        path = tmp_path / "trace.jsonl"
        count = tracer.write_jsonl(path)
        records = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line
        ]
        assert len(records) == count
        validate_trace_events(records)  # must not raise

    def test_engine_feeds_ambient_metrics(self, university):
        registry = MetricsRegistry()
        with use_metrics(registry):
            engine = Disambiguator(CompiledSchema(university))
            first = engine.complete("ta ~ name")
            engine.complete("ta ~ name")
        summary = registry.as_dict()
        assert summary["counters"]["completions"] == 2
        assert summary["counters"]["cache.hits"] == 1
        assert summary["counters"]["cache.misses"] == 1
        assert (
            summary["counters"]["traversal.recursive_calls"]
            == first.stats.recursive_calls
        )
        assert summary["histograms"]["query.recursive_calls"]["count"] == 2
