"""The paper's properties 1-7 (Sections 3.1, 3.5), machine-checked."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.algebra.agg import Aggregator
from repro.algebra.connectors import Connector, PRIMARY_CONNECTORS
from repro.algebra.labels import IDENTITY_LABEL, PathLabel
from repro.algebra.order import DEFAULT_ORDER
from repro.algebra.properties import (
    check_annihilator_on_cycles,
    check_con_associativity,
    check_con_identity,
    check_distributivity_failures,
    check_monotonicity,
    check_paper_incomparability_constraints,
    check_partial_order_axioms,
    semantic_length_agreement,
)


class TestProperty1ConAssociativity:
    def test_no_violations(self):
        assert check_con_associativity() == []


class TestProperty3FixpointOnSingletons:
    def test_agg_leaves_singletons_unchanged(self):
        aggregator = Aggregator(e=1)
        label = PathLabel.of_path([Connector.HAS_PART, Connector.ASSOC])
        assert aggregator.aggregate([label]) == [label]


class TestProperty4Identity:
    def test_isa_zero_is_the_identity(self):
        assert check_con_identity() == []

    def test_label_level_identity(self):
        label = PathLabel.of_path([Connector.IS_PART_OF])
        assert IDENTITY_LABEL.join(label) == label
        assert label.join(IDENTITY_LABEL) == label


class TestProperty5Annihilator:
    """Theta annihilates AGG on realizable cycle labels.

    Pure-Isa (or pure-May-Be) cycles are impossible in a valid schema
    (Isa is acyclic), so every realizable cycle mixes connectors and
    ends up dominated by Theta.
    """

    def test_representative_cycle_shapes(self):
        cycles = [
            [Connector.ISA, Connector.MAY_BE],
            [Connector.HAS_PART, Connector.IS_PART_OF],
            [Connector.ASSOC, Connector.ASSOC],
            [Connector.ISA, Connector.ASSOC, Connector.MAY_BE],
            [Connector.MAY_BE, Connector.ISA],
            [Connector.HAS_PART, Connector.HAS_PART, Connector.IS_PART_OF],
        ]
        assert check_annihilator_on_cycles(cycles, DEFAULT_ORDER) == []

    @given(
        st.lists(
            st.sampled_from(PRIMARY_CONNECTORS), min_size=1, max_size=8
        ).filter(
            lambda seq: not all(c is Connector.ISA for c in seq)
            and not all(c is Connector.MAY_BE for c in seq)
        )
    )
    @settings(max_examples=300)
    def test_random_realizable_cycles_are_annihilated(self, sequence):
        assert check_annihilator_on_cycles([sequence], DEFAULT_ORDER) == []


class TestProperty6DistributivityFails:
    def test_failures_exist_exactly_as_the_paper_states(self):
        assert check_distributivity_failures(DEFAULT_ORDER) != []


class TestProperty7Monotonicity:
    def test_no_connector_level_violations(self):
        assert check_monotonicity(DEFAULT_ORDER) == []


class TestOrderAxioms:
    def test_default_order_is_strict_partial_order(self):
        assert check_partial_order_axioms(DEFAULT_ORDER) == []

    def test_default_order_satisfies_figure3_constraints(self):
        assert check_paper_incomparability_constraints(DEFAULT_ORDER) == []


class TestSemanticLengthAgreement:
    @given(st.lists(st.sampled_from(PRIMARY_CONNECTORS), max_size=12))
    @settings(max_examples=200)
    def test_incremental_matches_closed_form(self, sequence):
        assert semantic_length_agreement(sequence)
