"""Designing a schema three ways, then disambiguating over it.

Shows the three schema-construction front ends — the fluent builder,
the text DSL, and JSON round-tripping — producing the same mechanical
parts schema, and the path algebra deriving the paper's sharing
relationships (`.SB`, `.SP`) on it.

Run with::

    python examples/schema_design.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    Disambiguator,
    SchemaBuilder,
    load_schema,
    parse_schema_dsl,
    save_schema,
)
from repro.model.dsl import schema_to_dsl


DSL_TEXT = """
schema workshop

class vehicle
    attr model
    haspart engine inverse vehicle
    haspart chassis inverse vehicle

class engine
    haspart screw inverse engine

class chassis
    haspart screw inverse chassis

class screw
    attr gauge : I

class supplier
    attr name
    assoc screw as supplies inverse supplier
"""


def build_with_builder():
    return (
        SchemaBuilder("workshop")
        .cls("vehicle").attr("model")
        .cls("vehicle").has_part("engine", inverse_name="vehicle")
        .cls("vehicle").has_part("chassis", inverse_name="vehicle")
        .cls("engine").has_part("screw", inverse_name="engine")
        .cls("chassis").has_part("screw", inverse_name="chassis")
        .cls("screw").attr("gauge", "I")
        .cls("supplier").attr("name")
        .cls("supplier").assoc("screw", name="supplies", inverse_name="supplier")
        .build()
    )


def main() -> None:
    # 1. Three front ends, one schema.
    from_builder = build_with_builder()
    from_dsl = parse_schema_dsl(DSL_TEXT)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "workshop.json"
        save_schema(from_builder, path)
        from_json = load_schema(path)

    def signature(schema):
        return sorted(
            (r.source, r.name, r.target, r.kind.symbol)
            for r in schema.relationships()
        )

    assert signature(from_builder) == signature(from_dsl) == signature(from_json)
    print("builder == DSL == JSON round-trip  (same relationships)\n")

    print("The schema, rendered back to DSL:")
    print(schema_to_dsl(from_builder))

    # 2. The sharing relationships of paper Section 3.3.1.
    engine = Disambiguator(from_builder)
    shared = engine.complete("engine<$vehicle$>chassis")
    path = shared.paths[0]
    print(
        f"engine <$ vehicle $> chassis carries label {path.label()} "
        "(Shares-SuperParts-With)"
    )
    sb = engine.complete("engine$>screw<$chassis").paths[0]
    print(
        f"engine $> screw <$ chassis carries label {sb.label()} "
        "(Shares-SubParts-With)\n"
    )

    # 3. Disambiguation over the designed schema.
    for question in ("vehicle ~ gauge", "supplier ~ model"):
        result = engine.complete(question)
        print(f"{question} ->")
        for completion in result.paths:
            print(f"    {completion}  {completion.label()}")


if __name__ == "__main__":
    main()
