"""The interactive completion loop of the paper's Figure 1.

The flow: the user poses a (possibly incomplete) path expression; the
completion module returns the plausible completions; the user approves a
subset; the evaluator runs the approved expressions.  The *chooser* is
pluggable so the loop works both interactively and in scripted
experiments:

* :func:`approve_all` — accept every returned completion;
* :func:`approve_first` — accept the single top-ranked completion;
* :class:`RecordingChooser` — wrap another chooser and keep a feedback
  log (the raw material for the learning extension the paper's Section 7
  proposes);
* any ``callable(list[ConcretePath]) -> list[ConcretePath]``.

Inputs starting with ``:`` are *session commands* rather than path
expressions:

* ``:trace on`` / ``:trace off`` — record spans for subsequent asks
  into a session-held :class:`~repro.obs.tracer.RecordingTracer`;
* ``:trace`` — tracing status; ``:trace show`` — the recorded tree;
* ``:metrics`` — the session's accumulated metrics summary as JSON;
* ``:budget`` — show the session's completion budget;
  ``:budget deadline MS`` / ``:budget nodes N`` / ``:budget paths N`` /
  ``:budget depth N`` set one dimension, ``:budget partial on|off``
  picks the anytime policy, ``:budget off`` clears the governor;
* ``:slowlog on [MS]`` / ``:slowlog off`` — tail-based slow-query
  logging for subsequent asks (retain asks over MS milliseconds plus
  the top-K slowest); ``:slowlog`` — status; ``:slowlog show`` — the
  retained entries;
* ``:prom`` — the session metrics in Prometheus text exposition format;
* ``:explain CANDIDATE`` — why is the candidate (not) an answer to the
  last asked query; ``:explain analyze [QUERY]`` — EXPLAIN ANALYZE: re-run
  the search (the last query by default) under a
  :class:`~repro.core.audit.SearchAuditLog` and render the decision
  tree, per-rule cut totals, the AGG* selection funnel, and each ranked
  completion's per-edge score decomposition;
* ``:edit add-class NAME`` / ``:edit remove-class NAME [cascade]`` /
  ``:edit add-rel SOURCE NAME TARGET [KIND]`` / ``:edit remove-rel
  SOURCE NAME`` / ``:edit add-attr SOURCE NAME [PRIM]`` /
  ``:edit add-isa SUB SUPER`` / ``:edit remove-isa SUB SUPER`` — evolve
  the schema *live*: the edit is packaged as a
  :class:`~repro.model.delta.SchemaDelta` and applied through
  :meth:`CompiledSchema.evolve`, so the closure is repaired
  incrementally and only completions whose support set meets the edit
  are evicted; ``:edit undo`` reverts the newest edit, bare ``:edit``
  shows the edit count and current schema fingerprint.

Command rounds return an :class:`Interaction` whose ``message`` carries
the rendered output (candidates/results stay empty), so interactive
front-ends print one field either way.

A failed round never kills the loop: :meth:`CompletionSession.ask`
catches every :class:`~repro.errors.ReproError` (syntax errors, no
completion, tripped budgets) and returns an :class:`Interaction` whose
``message`` carries the error text, keeping the Figure 1 conversation
going.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
from collections.abc import Callable, Sequence

from repro.core.ast import ConcretePath
from repro.core.compiled import CompiledSchema
from repro.core.engine import Disambiguator
from repro.errors import BudgetExceededError, ReproError
from repro.model.classes import PRIMITIVE_CLASS_NAMES
from repro.model.delta import (
    AddClass,
    AddInheritanceEdge,
    AddRelationship,
    RemoveClass,
    RemoveInheritanceEdge,
    RemoveRelationship,
    SchemaDelta,
    relationship_pair,
)
from repro.model.instances import Database
from repro.model.kinds import KIND_BY_SYMBOL, RelationshipKind
from repro.model.relationships import Relationship
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.promtext import render_prometheus
from repro.obs.slowlog import SlowQueryLog, get_slowlog, use_slowlog
from repro.obs.tracer import RecordingTracer, get_tracer, use_tracer
from repro.query.evaluator import evaluate
from repro.resilience.budget import Budget, use_budget

__all__ = [
    "CompletionSession",
    "Interaction",
    "approve_all",
    "approve_first",
    "RecordingChooser",
]

Chooser = Callable[[Sequence[ConcretePath]], list[ConcretePath]]


def approve_all(candidates: Sequence[ConcretePath]) -> list[ConcretePath]:
    """Accept every completion the system proposes."""
    return list(candidates)


def approve_first(candidates: Sequence[ConcretePath]) -> list[ConcretePath]:
    """Accept only the top-ranked completion (empty stays empty)."""
    return list(candidates[:1])


class RecordingChooser:
    """Wrap a chooser and log (candidates, chosen) pairs.

    The log is the user-feedback stream the paper's future-work section
    wants to learn from; :meth:`rejection_counts` summarizes it as a
    per-class rejection tally (a candidate signal for auto-derived
    excluded classes).
    """

    def __init__(self, inner: Chooser) -> None:
        self.inner = inner
        self.log: list[tuple[list[ConcretePath], list[ConcretePath]]] = []

    def __call__(
        self, candidates: Sequence[ConcretePath]
    ) -> list[ConcretePath]:
        chosen = self.inner(candidates)
        self.log.append((list(candidates), chosen))
        return chosen

    def rejection_counts(self) -> dict[str, int]:
        """How often each class appeared in rejected completions."""
        counts: dict[str, int] = {}
        for candidates, chosen in self.log:
            chosen_keys = {(path.root, path.edges) for path in chosen}
            for path in candidates:
                if (path.root, path.edges) in chosen_keys:
                    continue
                for name in path.classes():
                    counts[name] = counts.get(name, 0) + 1
        return counts


@dataclasses.dataclass(frozen=True)
class Interaction:
    """One round of the Figure 1 loop.

    ``message`` is empty for completion rounds; session commands
    (``:trace ...``, ``:metrics``) put their rendered output there and
    leave the completion fields empty.
    """

    input_text: str
    candidates: tuple[ConcretePath, ...]
    approved: tuple[ConcretePath, ...]
    results: tuple[tuple[str, frozenset], ...]
    message: str = ""

    @property
    def is_command(self) -> bool:
        return self.input_text.startswith(":")

    @property
    def values(self) -> frozenset:
        combined: frozenset = frozenset()
        for _, results in self.results:
            combined |= results
        return combined


class CompletionSession:
    """Drives the complete -> approve -> evaluate loop.

    Parameters
    ----------
    database:
        The instance store to evaluate against (its schema drives the
        completion).
    chooser:
        Approval policy; defaults to :func:`approve_all`.
    engine:
        Optional preconfigured :class:`~repro.core.engine.Disambiguator`.
    compiled:
        Optional shared :class:`~repro.core.compiled.CompiledSchema`;
        sessions over one artifact share its completion cache.  Ignored
        when an explicit ``engine`` is given (the engine already carries
        its artifact).
    budget:
        Optional :class:`~repro.resilience.budget.Budget` governing the
        session's completions (editable at runtime via ``:budget``
        commands).
    """

    def __init__(
        self,
        database: Database,
        chooser: Chooser | None = None,
        engine: Disambiguator | None = None,
        compiled: CompiledSchema | None = None,
        budget: Budget | None = None,
    ) -> None:
        self.database = database
        self.chooser: Chooser = chooser if chooser is not None else approve_all
        if engine is None:
            engine = Disambiguator(
                compiled if compiled is not None else database.schema
            )
        self.engine = engine
        self.history: list[Interaction] = []
        #: Session-held tracer; None until ``:trace on``.  Survives
        #: ``:trace off`` so ``:trace show`` can still render it.
        self.tracer: RecordingTracer | None = None
        self.tracing = False
        #: Metrics accumulate across the whole session unconditionally —
        #: the registry is cheap and ``:metrics`` should always answer.
        self.metrics = MetricsRegistry()
        # Pre-create the budget-governance counters so ``:metrics``
        # always reports them (zero until a budget actually trips).
        self.metrics.counter("budget.trips")
        self.metrics.counter("budget.degrades")
        #: The session's completion budget (``:budget ...`` edits it).
        #: Installed as the ambient budget around every completion round.
        self.budget = budget
        #: Session-held slow-query log; None until ``:slowlog on``.
        #: Survives ``:slowlog off`` so ``:slowlog show`` still renders.
        self.slowlog: SlowQueryLog | None = None
        self.slow_logging = False
        #: Applied ``:edit`` deltas, newest last (``:edit undo`` pops and
        #: applies the inverse).
        self._edits: list[SchemaDelta] = []

    def ask(self, text: str) -> Interaction:
        """Run one full round for the given (possibly incomplete) input.

        Inputs starting with ``:`` are dispatched as session commands.
        Errors never escape: any :class:`~repro.errors.ReproError` from
        the round (bad syntax, no consistent completion, a tripped
        budget) comes back as an :class:`Interaction` whose ``message``
        carries the error text, so the interactive loop survives.
        """
        if text.lstrip().startswith(":"):
            interaction = self._command(text.strip())
            self.history.append(interaction)
            return interaction
        # A session without its own budget inherits any ambient one
        # rather than clearing it.
        budget_scope = (
            use_budget(self.budget)
            if self.budget is not None
            else contextlib.nullcontext()
        )
        slowlog_scope = (
            use_slowlog(self.slowlog)
            if self.slow_logging and self.slowlog is not None
            else contextlib.nullcontext()
        )
        try:
            with use_metrics(self.metrics), budget_scope, slowlog_scope:
                if self.tracing and self.tracer is not None:
                    with use_tracer(self.tracer):
                        interaction = self._round(text)
                else:
                    interaction = self._round(text)
        except ReproError as error:
            interaction = self._failed_round(text, error)
        self.history.append(interaction)
        return interaction

    def _failed_round(self, text: str, error: ReproError) -> Interaction:
        """Package a round's error as a message-carrying interaction.

        A :class:`~repro.errors.BudgetExceededError` still surfaces its
        best-so-far candidates so the user sees what the truncated
        search managed to find.
        """
        candidates: tuple[ConcretePath, ...] = ()
        if isinstance(error, BudgetExceededError) and error.partial is not None:
            candidates = tuple(getattr(error.partial, "paths", ()))
        return Interaction(
            input_text=text,
            candidates=candidates,
            approved=(),
            results=(),
            message=f"error: {error}",
        )

    def _round(self, text: str) -> Interaction:
        """The complete -> approve -> evaluate pipeline for one input."""
        with get_slowlog().observe(
            "ask", text, e=self.engine.e, pruning=self.engine.pruning
        ) as obs:
            # The tracer is resolved *inside* the observation: when no
            # session tracer is on, the slow log installs a private
            # recording tracer so retained asks still carry span trees.
            tracer = get_tracer()
            with tracer.span("ask", input=text) as span:
                completion = self.engine.complete(text)
                obs.record_result(completion)
                approved = self.chooser(completion.paths)
                with tracer.span("evaluate", paths=len(approved)):
                    results = tuple(
                        (str(path), frozenset(evaluate(self.database, path)))
                        for path in approved
                    )
                span.set(
                    candidates=len(completion.paths), approved=len(approved)
                )
                obs.set(approved=len(approved))
        message = ""
        if completion.is_partial:
            message = (
                f"warning: search truncated by budget "
                f"[{completion.truncation_reason}]; candidates are the "
                "best found so far"
            )
        return Interaction(
            input_text=text,
            candidates=completion.paths,
            approved=tuple(approved),
            results=results,
            message=message,
        )

    # ------------------------------------------------------------------
    # Session commands
    # ------------------------------------------------------------------

    def _command(self, text: str) -> Interaction:
        """Handle a ``:``-prefixed session command."""
        parts = text.split()
        name, args = parts[0], parts[1:]
        if name == ":trace":
            message = self._trace_command(args)
        elif name == ":metrics":
            message = json.dumps(self.metrics.as_dict(), indent=2, sort_keys=True)
        elif name == ":budget":
            message = self._budget_command(args)
        elif name == ":slowlog":
            message = self._slowlog_command(args)
        elif name == ":prom":
            message = render_prometheus(self.metrics)
        elif name == ":edit":
            message = self._edit_command(args)
        elif name == ":explain":
            message = self._explain_command(args)
        else:
            message = (
                f"unknown session command {name!r} "
                "(expected :trace [on|off|show], :metrics, :budget, "
                ":slowlog [on [MS]|off|show], :edit ..., "
                ":explain CANDIDATE | :explain analyze [QUERY], or :prom)"
            )
        return Interaction(
            input_text=text,
            candidates=(),
            approved=(),
            results=(),
            message=message,
        )

    def _trace_command(self, args: list[str]) -> str:
        if not args:
            spans = self.tracer.span_count if self.tracer is not None else 0
            return (
                f"tracing {'on' if self.tracing else 'off'} "
                f"({spans} span(s) recorded)"
            )
        if args[0] == "on":
            if self.tracer is None:
                self.tracer = RecordingTracer()
            self.tracing = True
            return "tracing on"
        if args[0] == "off":
            self.tracing = False
            return "tracing off"
        if args[0] == "show":
            if self.tracer is None or not self.tracer.roots:
                return "no spans recorded (use ':trace on' first)"
            return self.tracer.render()
        return f"unknown :trace argument {args[0]!r} (expected on|off|show)"

    def _slowlog_command(self, args: list[str]) -> str:
        if not args:
            retained = len(self.slowlog) if self.slowlog is not None else 0
            return (
                f"slow-query logging {'on' if self.slow_logging else 'off'} "
                f"({retained} entr{'y' if retained == 1 else 'ies'} retained)"
            )
        if args[0] == "on":
            threshold_ms: float | None = None
            if len(args) == 2:
                try:
                    threshold_ms = float(args[1])
                except ValueError:
                    return f"not a number: {args[1]!r}"
            elif len(args) > 2:
                return "usage: :slowlog [on [MS]|off|show]"
            if self.slowlog is None or threshold_ms is not None:
                self.slowlog = SlowQueryLog(threshold_ms=threshold_ms)
            self.slow_logging = True
            described = (
                f"threshold {self.slowlog.threshold_ms:g}ms"
                if self.slowlog.threshold_ms is not None
                else "threshold off"
            )
            return f"slow-query logging on ({described}, top-{self.slowlog.top_k})"
        if args[0] == "off":
            self.slow_logging = False
            return "slow-query logging off"
        if args[0] == "show":
            if self.slowlog is None:
                return "no slow queries recorded (use ':slowlog on' first)"
            return self.slowlog.render()
        return f"unknown :slowlog argument {args[0]!r} (expected on|off|show)"

    _BUDGET_USAGE = (
        "usage: :budget | :budget off | :budget deadline MS | "
        ":budget nodes N | :budget paths N | :budget depth N | "
        ":budget partial on|off"
    )

    def _budget_command(self, args: list[str]) -> str:
        if not args:
            if self.budget is None:
                return "budget off (completions run to exhaustion)"
            return f"budget {self.budget.describe()}"
        verb = args[0]
        if verb == "off":
            self.budget = None
            return "budget off"
        if verb == "partial":
            if len(args) != 2 or args[1] not in ("on", "off"):
                return self._BUDGET_USAGE
            base = self.budget if self.budget is not None else Budget()
            self.budget = dataclasses.replace(
                base, partial_ok=args[1] == "on"
            )
            return f"budget {self.budget.describe()}"
        fields = {
            "deadline": "max_seconds",
            "nodes": "max_nodes",
            "paths": "max_paths",
            "depth": "max_stack_depth",
        }
        if verb not in fields or len(args) != 2:
            return self._BUDGET_USAGE
        try:
            raw = float(args[1]) if verb == "deadline" else int(args[1])
        except ValueError:
            return f"not a number: {args[1]!r}"
        value = raw / 1000.0 if verb == "deadline" else raw
        base = self.budget if self.budget is not None else Budget()
        try:
            self.budget = dataclasses.replace(base, **{fields[verb]: value})
        except ValueError as error:
            return f"error: {error}"
        return f"budget {self.budget.describe()}"

    _EDIT_USAGE = (
        "usage: :edit | :edit undo | :edit add-class NAME | "
        ":edit remove-class NAME [cascade] | "
        ":edit add-rel SOURCE NAME TARGET [KIND] | "
        ":edit remove-rel SOURCE NAME | "
        ":edit add-attr SOURCE NAME [PRIM] | "
        ":edit add-isa SUB SUPER | :edit remove-isa SUB SUPER"
    )

    def _edit_command(self, args: list[str]) -> str:
        """Handle ``:edit ...`` — live schema evolution inside the loop.

        Edits build a :class:`~repro.model.delta.SchemaDelta`, evolve the
        engine's compiled artifact incrementally (closure repair plus
        surgical cache eviction instead of a cold recompile), and re-point
        both the engine and the database at the evolved schema.  Applied
        deltas stack; ``:edit undo`` applies the inverse of the newest.
        """
        if not args:
            schema = self.engine.schema
            return (
                f"{len(self._edits)} edit(s) applied; schema has "
                f"{schema.user_class_count} classes and "
                f"{schema.relationship_count} relationships "
                f"[fingerprint {schema.fingerprint()[:12]}]"
            )
        if args[0] == "undo":
            if len(args) != 1:
                return self._EDIT_USAGE
            if not self._edits:
                return "nothing to undo"
            last = self._edits[-1]
            failure = self._apply_delta(last.invert())
            if failure is not None:
                return failure
            self._edits.pop()
            return f"undid: {last.describe()}"
        try:
            delta = self._parse_edit(args[0], args[1:])
        except ValueError as error:
            return str(error)
        failure = self._apply_delta(delta)
        if failure is not None:
            return failure
        self._edits.append(delta)
        return (
            f"applied: {delta.describe()} "
            f"[fingerprint {self.engine.schema.fingerprint()[:12]}]"
        )

    _EXPLAIN_USAGE = (
        "usage: :explain CANDIDATE  (why is CANDIDATE (not) an answer to "
        "the last query?)  |  :explain analyze [QUERY]  (audited re-run: "
        "decision tree, cuts, score decomposition)"
    )

    def _explain_command(self, args: list[str]) -> str:
        """Handle ``:explain ...`` — candidate verdicts and EXPLAIN ANALYZE.

        ``:explain CANDIDATE`` asks the engine why the candidate is (or
        is not) an answer to the most recent completion round's query.
        ``:explain analyze [QUERY]`` re-runs the search cold under an
        audit log (defaulting to the last query) and renders the full
        decision tree, cut totals, and per-edge score decomposition.
        """
        if not args:
            return self._EXPLAIN_USAGE
        if args[0] == "analyze":
            from repro.core.audit import audit_completion

            query = " ".join(args[1:]) or self._last_query()
            if query is None:
                return "no query to analyze yet (ask one first or pass one)"
            try:
                _, audit = audit_completion(
                    self.engine.compiled,
                    query,
                    e=self.engine.e,
                    pruning=self.engine.pruning,
                )
            except (ReproError, ValueError) as error:
                return f"error: {error}"
            return audit.render()
        query = self._last_query()
        if query is None:
            return "no query to explain against yet (ask one first)"
        try:
            explanation = self.engine.explain(query, " ".join(args))
        except ReproError as error:
            return f"error: {error}"
        return f"[{explanation.verdict}]\n{explanation.render()}"

    def _last_query(self) -> str | None:
        """The most recent non-command input, or None."""
        for interaction in reversed(self.history):
            if not interaction.is_command:
                return interaction.input_text
        return None

    def _parse_edit(self, verb: str, rest: list[str]) -> SchemaDelta:
        """Parse one ``:edit`` verb into a delta (``ValueError`` = usage)."""
        schema = self.engine.schema
        if verb == "add-class":
            if len(rest) != 1:
                raise ValueError(self._EDIT_USAGE)
            return SchemaDelta.of(AddClass(rest[0]))
        if verb == "remove-class":
            if not rest or len(rest) > 2 or rest[1:] not in ([], ["cascade"]):
                raise ValueError(self._EDIT_USAGE)
            name = rest[0]
            doc = schema.get_class(name).doc if schema.has_class(name) else ""
            commands: list = []
            if rest[1:] == ["cascade"]:
                # A class removal is only well-formed once the class is
                # isolated; cascade prepends the detaching removals.
                commands.extend(
                    RemoveRelationship(rel)
                    for rel in schema.relationships()
                    if name in (rel.source, rel.target)
                )
            commands.append(RemoveClass(name, doc=doc))
            return SchemaDelta.of(*commands)
        if verb == "add-rel":
            if len(rest) not in (3, 4):
                raise ValueError(self._EDIT_USAGE)
            source, name, target = rest[:3]
            symbol = rest[3] if len(rest) == 4 else "."
            kind = KIND_BY_SYMBOL.get(symbol)
            if kind is None:
                raise ValueError(
                    f"unknown relationship kind {symbol!r} "
                    f"(expected one of {sorted(KIND_BY_SYMBOL)})"
                )
            return relationship_pair(source, target, kind, name=name)
        if verb == "remove-rel":
            if len(rest) != 2:
                raise ValueError(self._EDIT_USAGE)
            source, name = rest
            matches = [
                rel
                for rel in (
                    schema.relationships_from(source)
                    if schema.has_class(source)
                    else []
                )
                if rel.name == name
            ]
            if not matches:
                raise ValueError(
                    f"error: no relationship {name!r} out of {source!r}"
                )
            return SchemaDelta.of(RemoveRelationship(matches[0]))
        if verb == "add-attr":
            if len(rest) not in (2, 3):
                raise ValueError(self._EDIT_USAGE)
            source, name = rest[:2]
            primitive = rest[2] if len(rest) == 3 else "C"
            if primitive not in PRIMITIVE_CLASS_NAMES:
                raise ValueError(
                    f"error: attribute target must be a primitive class "
                    f"{sorted(PRIMITIVE_CLASS_NAMES)}, got {primitive!r}"
                )
            return SchemaDelta.of(
                AddRelationship(
                    Relationship(
                        source,
                        primitive,
                        RelationshipKind.IS_ASSOCIATED_WITH,
                        name=name,
                    )
                )
            )
        if verb in ("add-isa", "remove-isa"):
            if len(rest) != 2:
                raise ValueError(self._EDIT_USAGE)
            command_type = (
                AddInheritanceEdge if verb == "add-isa" else RemoveInheritanceEdge
            )
            return SchemaDelta.of(command_type(rest[0], rest[1]))
        raise ValueError(
            f"unknown :edit verb {verb!r}\n{self._EDIT_USAGE}"
        )

    def _apply_delta(self, delta: SchemaDelta) -> str | None:
        """Evolve the engine by ``delta``; return an error string on failure.

        Runs under the session's metrics registry so the evolution's
        counters (``delta.applied``, ``cache.selective_evictions``,
        ``closure.incremental_repairs``) land in ``:metrics`` output.
        On success the session's engine and database schema are re-pointed
        at the evolved artifact and ``None`` is returned.
        """
        try:
            with use_metrics(self.metrics):
                engine = self.engine.evolved(delta)
        except (ReproError, ValueError, KeyError) as error:
            return f"error: {error}"
        self.engine = engine
        self.database.schema = engine.schema
        return None
