"""Property-style round-trip of the DSL on generated schemas."""

import pytest

from repro.model.dsl import parse_schema_dsl, schema_to_dsl
from repro.schemas.cupid import build_cupid_schema
from repro.schemas.generator import GeneratorConfig, generate_schema


def _signature(schema):
    return sorted(
        (r.source, r.name, r.target, r.kind.symbol)
        for r in schema.relationships()
    )


class TestDslRoundTripsGeneratedSchemas:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_schema_survives_dsl(self, seed):
        schema = generate_schema(
            GeneratorConfig(classes=20, seed=seed, association_factor=0.8)
        )
        regenerated = parse_schema_dsl(schema_to_dsl(schema))
        assert _signature(regenerated) == _signature(schema)

    def test_cupid_survives_dsl(self):
        schema = build_cupid_schema()
        regenerated = parse_schema_dsl(schema_to_dsl(schema))
        assert _signature(regenerated) == _signature(schema)
        assert regenerated.user_class_count == 92
        assert regenerated.relationship_count == 364

    @pytest.mark.parametrize("seed", [0, 1])
    def test_completions_identical_after_round_trip(self, seed):
        from repro.core.completion import complete_paths
        from repro.core.target import RelationshipTarget
        from repro.model.graph import SchemaGraph

        schema = generate_schema(GeneratorConfig(classes=15, seed=seed))
        regenerated = parse_schema_dsl(schema_to_dsl(schema))
        target = RelationshipTarget("label")
        for root in ["cls_000", "cls_005"]:
            original = complete_paths(
                SchemaGraph(schema), root, target
            ).expressions
            recovered = complete_paths(
                SchemaGraph(regenerated), root, target
            ).expressions
            assert original == recovered
