"""Bench E3 — regenerates Figure 7 (response time per query at E=5).

Paper (DecStation 5000/25, 1994): large per-query variance, average
6.29 s, maximum 14.45 s, 0.17 ms per recursive call.  We report
wall-clock seconds and the hardware-independent recursive-call counts;
the assertion is on the *shape* — significant variance across queries,
with some near-instant and some orders of magnitude costlier.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.figure7 import render_figure7, run_figure7


@pytest.mark.benchmark(group="figure7")
def test_figure7_response_time(benchmark, cupid, oracle):
    result = benchmark.pedantic(
        run_figure7,
        args=(cupid, oracle),
        kwargs={"e": 5},
        rounds=1,
        iterations=1,
    )
    emit("Figure 7: Response Time Per Query (E=5)", render_figure7(result))

    calls = [t.recursive_calls for t in result.timings]
    assert len(calls) == 10
    # the paper's variance story: cheapest and costliest queries differ
    # by orders of magnitude
    assert max(calls) > 50 * min(calls)
    assert result.max_seconds >= result.average_seconds
