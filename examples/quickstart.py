"""Quickstart: complete the paper's flagship incomplete path expression.

Builds the Figure 2 university schema, asks for ``ta ~ name`` — "the
names of teaching assistants" — and shows how the system resolves the
ambiguity to the two Isa-chain completions, then evaluates them over a
tiny populated database.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CompletionSession,
    Database,
    Disambiguator,
    build_university_schema,
)
from repro.core.printer import format_candidates, format_path_verbose


def main() -> None:
    schema = build_university_schema()
    print(f"Schema: {schema.summary()}\n")

    # 1. Disambiguate an incomplete path expression.
    engine = Disambiguator(schema)
    result = engine.complete("ta ~ name")
    print("ta ~ name  completes to:")
    print(format_candidates(result.paths))
    print(f"\n  search cost: {result.stats}\n")

    # 2. The completions in detail.
    print("First completion, step by step:")
    print(format_path_verbose(result.paths[0]))
    print()

    # 3. Less intuitive alternatives the algorithm correctly rejects.
    print("Rejected (less plausible) alternatives and their labels:")
    for text in (
        "ta@>grad@>student.take.name",
        "ta@>instructor@>teacher.teach.name",
        "ta@>grad@>student.department.name",
    ):
        validated = engine.complete(text)  # complete input: validated only
        path = validated.paths[0]
        print(f"  {path}  {path.label()}")
    print()

    # 4. Populate a database and run the full Figure 1 loop.
    db = Database(schema)
    bob = db.create("ta")
    db.set_attribute(bob, "name", "bob")
    db.set_attribute(bob, "ssn", 4242)
    eve = db.create("student")
    db.set_attribute(eve, "name", "eve")

    session = CompletionSession(db)
    for question in ("ta ~ name", "ta ~ ssn", "student@>person.name"):
        interaction = session.ask(question)
        print(f"{question!r} -> {sorted(map(str, interaction.values))}")


if __name__ == "__main__":
    main()
