"""Regression tests for the registry's fingerprint index (delta PR).

The registry used to scan every entry on ``invalidate(schema)`` and let
stale artifacts linger until the next full clear; the fingerprint index
makes fingerprint-scoped operations O(matches) and ``compile_schema``
evicts a stale hit eagerly on lookup.
"""

import pytest

from repro.core import compiled as compiled_module
from repro.core.compiled import compile_schema, invalidate, registry_size
from repro.model.kinds import RelationshipKind
from repro.model.schema import Schema
from repro.algebra.order import DEFAULT_ORDER, flat_order


@pytest.fixture(autouse=True)
def clean_registry():
    invalidate()
    yield
    invalidate()


def build_schema(name="reg-index"):
    s = Schema(name)
    s.add_classes(["person", "company"])
    s.add_relationship(
        "person", "company", RelationshipKind.IS_ASSOCIATED_WITH, name="employer"
    )
    return s


class TestFingerprintIndex:
    def test_index_tracks_registrations(self):
        schema = build_schema()
        compiled = compile_schema(schema)
        assert registry_size() == 1
        assert compiled_module._REGISTRY_BY_FP[compiled.fingerprint] == {
            compiled.key
        }

    def test_invalidate_by_schema_is_scoped(self):
        schema = build_schema()
        other = build_schema("other")
        other.add_class("extra")
        compile_schema(schema)
        compile_schema(other)
        assert invalidate(schema) == 1
        assert registry_size() == 1
        assert invalidate(schema) == 0  # already gone

    def test_invalidate_drops_all_orders_sharing_a_fingerprint(self):
        schema = build_schema()
        compile_schema(schema, order=DEFAULT_ORDER)
        compile_schema(schema, order=flat_order())
        assert registry_size() == 2
        assert invalidate(schema) == 2
        assert registry_size() == 0
        assert compiled_module._REGISTRY_BY_FP == {}

    def test_full_invalidate_clears_index(self):
        compile_schema(build_schema())
        invalidate()
        assert compiled_module._REGISTRY_BY_FP == {}
        assert registry_size() == 0


class TestEagerStaleEviction:
    def test_stale_hit_is_evicted_on_lookup(self):
        schema = build_schema()
        stale = compile_schema(schema)
        # Mutate the schema *behind* the registered artifact: the entry
        # is now permanently unservable under its old key.
        schema.add_class("mutation")
        fresh_schema = build_schema()
        fresh = compile_schema(fresh_schema)
        assert fresh is not stale
        # The stale artifact was evicted eagerly — exactly one live
        # entry remains, and the index agrees with the registry.
        assert registry_size() == 1
        assert list(compiled_module._REGISTRY.values()) == [fresh]
        assert compiled_module._REGISTRY_BY_FP == {
            fresh.fingerprint: {fresh.key}
        }
