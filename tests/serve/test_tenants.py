"""Tenant registry: residency, cross-tenant LRU, prewarm retries."""

import pytest

from repro.core.compiled import CompiledSchema
from repro.core.engine import Disambiguator
from repro.errors import InjectedFaultError, NoCompletionError
from repro.resilience.retry import RetryPolicy
from repro.serve.tenants import (
    TenantRegistry,
    UnknownTenantError,
    prewarm_tenant,
)


def fill_cache(tenant, expressions):
    engine = tenant.engine(1)
    for expression in expressions:
        engine.complete(expression)


UNIVERSITY_QUERIES = [
    "ta ~ name",
    "student.take.teacher",
    "student ~ dept",
    "teacher ~ name",
]


class TestRegistry:
    def test_unknown_tenant_raises_with_known_names(self, university):
        registry = TenantRegistry(max_cache_bytes=1 << 20)
        registry.add("university", CompiledSchema(university))
        with pytest.raises(UnknownTenantError) as exc:
            registry.get("ghost")
        assert "university" in str(exc.value)

    def test_get_touches_recency(self, university, cupid):
        registry = TenantRegistry(max_cache_bytes=1 << 20)
        registry.add("a", CompiledSchema(university))
        registry.add("b", CompiledSchema(cupid))
        first = registry.get("a")
        second = registry.get("b")
        assert second.last_touch > first.last_touch
        again = registry.get("a")
        assert again.last_touch > second.last_touch

    def test_shared_schema_shares_one_artifact_and_is_counted_once(
        self, university
    ):
        registry = TenantRegistry(max_cache_bytes=1 << 20)
        compiled = CompiledSchema(university)
        registry.add("a", compiled)
        registry.add("b", compiled)
        fill_cache(registry.get("a"), UNIVERSITY_QUERIES[:2])
        assert (
            registry.total_cache_bytes()
            == compiled.cache.estimated_bytes()
        )

    def test_describe_is_json_shaped(self, university):
        registry = TenantRegistry(max_cache_bytes=1 << 20)
        tenant = registry.add("university", CompiledSchema(university))
        entry = tenant.describe()
        assert entry["tenant"] == "university"
        assert entry["classes"] > 0
        assert "size" in entry["completion_cache"]


class TestMemoryGovernor:
    def test_eviction_targets_least_recently_touched_tenant(
        self, university, cupid
    ):
        registry = TenantRegistry(max_cache_bytes=1 << 30)
        cold = registry.add("cold", CompiledSchema(university))
        hot = registry.add("hot", CompiledSchema(cupid))
        fill_cache(cold, UNIVERSITY_QUERIES)
        fill_cache(hot, ["experiment ~ conductance"])
        hot_bytes = hot.compiled.cache.estimated_bytes()
        registry.get("hot")  # hot is the most recently touched

        # Bound chosen so the governor must evict, and evicting the
        # cold tenant entirely is enough to satisfy it.
        registry.max_cache_bytes = hot_bytes
        evicted, freed = registry.enforce_memory_bound()
        assert evicted > 0 and freed > 0
        assert len(hot.compiled.cache) == 1  # hot tenant untouched
        assert registry.total_cache_bytes() <= hot_bytes

    def test_bound_already_satisfied_is_a_noop(self, university):
        registry = TenantRegistry(max_cache_bytes=1 << 30)
        tenant = registry.add("university", CompiledSchema(university))
        fill_cache(tenant, UNIVERSITY_QUERIES[:1])
        assert registry.enforce_memory_bound() == (0, 0)

    def test_tiny_bound_with_empty_caches_terminates(self, university):
        registry = TenantRegistry(max_cache_bytes=1)
        registry.add("university", CompiledSchema(university))
        assert registry.enforce_memory_bound() == (0, 0)

    def test_estimated_bytes_shrinks_on_eviction(self, university):
        registry = TenantRegistry(max_cache_bytes=1 << 30)
        tenant = registry.add("university", CompiledSchema(university))
        fill_cache(tenant, UNIVERSITY_QUERIES)
        before = registry.total_cache_bytes()
        registry.max_cache_bytes = 1
        evicted, freed = registry.enforce_memory_bound()
        assert evicted > 0
        assert registry.total_cache_bytes() == before - freed


class FlakyEngine:
    """Fails with an injected fault N times, then delegates."""

    def __init__(self, engine, failures: int) -> None:
        self._engine = engine
        self.failures = failures
        self.calls = 0

    def complete(self, expression):
        self.calls += 1
        if self.failures > 0:
            self.failures -= 1
            raise InjectedFaultError("graph.edges_from", "flaky backend")
        return self._engine.complete(expression)


class TestPrewarm:
    def _tenant(self, schema):
        registry = TenantRegistry(max_cache_bytes=1 << 20)
        return registry.add("t", CompiledSchema(schema))

    def test_prewarm_fills_the_cache(self, university):
        tenant = self._tenant(university)
        warmed = prewarm_tenant(tenant, UNIVERSITY_QUERIES)
        assert warmed == len(UNIVERSITY_QUERIES)
        assert len(tenant.compiled.cache) >= warmed

    def test_transient_faults_are_retried(self, university):
        tenant = self._tenant(university)
        flaky = FlakyEngine(tenant.engine(1), failures=2)
        tenant._engines[1] = flaky
        policy = RetryPolicy(max_attempts=4, base_delay=0.0, seed=0)
        warmed = prewarm_tenant(
            tenant, ["ta ~ name"], policy=policy
        )
        assert warmed == 1
        assert flaky.calls == 3  # two faults + one success

    def test_exhausted_retries_skip_the_expression(self, university):
        tenant = self._tenant(university)
        flaky = FlakyEngine(tenant.engine(1), failures=99)
        tenant._engines[1] = flaky
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, seed=0)
        warmed = prewarm_tenant(tenant, ["ta ~ name"], policy=policy)
        assert warmed == 0

    def test_hard_errors_are_not_retried(self, university):
        tenant = self._tenant(university)
        calls = []
        real = tenant.engine(1)

        class Recorder:
            def complete(self, expression):
                calls.append(expression)
                raise NoCompletionError("no completion for student.ghost")

            def __getattr__(self, name):
                return getattr(real, name)

        tenant._engines[1] = Recorder()
        warmed = prewarm_tenant(tenant, ["student.ghost"])
        assert warmed == 0
        assert len(calls) == 1  # no retry on a definitive failure

    def test_duplicate_expressions_warm_once(self, university):
        tenant = self._tenant(university)
        warmed = prewarm_tenant(tenant, ["ta ~ name", "ta ~ name"])
        assert warmed == 1
